"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """A simulated BAM + reference + truth VCF built via the CLI."""
    root = tmp_path_factory.mktemp("cli")
    bam = root / "sample.bam"
    ref = root / "ref.fa"
    truth = root / "truth.vcf"
    rc = main(
        [
            "simulate",
            "--genome-length", "900",
            "--depth", "250",
            "--variants", "6",
            "--min-freq", "0.05",
            "--max-freq", "0.2",
            "--seed", "21",
            "--out-bam", str(bam),
            "--out-reference", str(ref),
            "--out-truth", str(truth),
        ]
    )
    assert rc == 0
    return root


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["simulate", "--out-bam", "x.bam"],
            ["call", "in.bam", "--reference", "r.fa", "--out", "o.vcf"],
            ["compare", "a.vcf", "b.vcf"],
            ["upset", "a.vcf", "b.vcf"],
        ],
    )
    def test_valid_invocations_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestSimulate:
    def test_outputs_exist(self, workspace):
        assert (workspace / "sample.bam").stat().st_size > 0
        assert (workspace / "ref.fa").stat().st_size > 0
        assert (workspace / "truth.vcf").stat().st_size > 0

    def test_truth_vcf_well_formed(self, workspace):
        from repro.io.vcf import read_vcf

        headers, records = read_vcf(workspace / "truth.vcf")
        assert len(records) == 6
        assert all("AF" in r.info for r in records)

    def test_bam_is_readable(self, workspace):
        from repro.io.bam import BamReader

        with BamReader(workspace / "sample.bam") as reader:
            n = sum(1 for _ in reader)
        assert n > 1000


class TestCall:
    def test_call_improved(self, workspace, capsys):
        out = workspace / "calls.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--stats",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "PASS calls" in text
        assert "approx first-pass" in text
        assert out.exists()

    def test_call_recovers_truth(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls2.vcf"
        main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
            ]
        )
        _, calls = read_vcf(out)
        _, truth = read_vcf(workspace / "truth.vcf")
        called = {(r.pos, r.ref, r.alt) for r in calls if r.filter == "PASS"}
        expected = {(r.pos, r.ref, r.alt) for r in truth}
        assert expected <= called

    def test_original_and_improved_agree(self, workspace):
        from repro.io.vcf import read_vcf

        outs = {}
        for algo in ("improved", "original"):
            out = workspace / f"calls_{algo}.vcf"
            main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                    "--algorithm", algo,
                ]
            )
            _, records = read_vcf(out)
            outs[algo] = {(r.pos, r.ref, r.alt) for r in records}
        assert outs["improved"] == outs["original"]

    def test_engine_option_batched_identical(self, workspace):
        outs = {}
        for engine in ("streaming", "batched"):
            out = workspace / f"calls_{engine}.vcf"
            rc = main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                    "--engine", engine,
                ]
            )
            assert rc == 0
            outs[engine] = out.read_bytes()
        assert outs["streaming"] == outs["batched"]

    def test_engine_option_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["call", "in.bam", "--reference", "r.fa", "--out", "o.vcf",
                 "--engine", "warp"]
            )

    def test_parallel_call(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_par.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--workers", "3",
            ]
        )
        assert rc == 0
        _, serial = read_vcf(workspace / "calls2.vcf")
        _, par = read_vcf(out)
        assert {(r.pos, r.alt) for r in par} == {(r.pos, r.alt) for r in serial}

    def test_region_option(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_region.vcf"
        main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--region", "NC_045512.2-sim:1-300",
            ]
        )
        _, records = read_vcf(out)
        assert all(r.pos < 300 for r in records)

    def test_bad_reference_errors(self, workspace, tmp_path):
        from repro.io.fasta import FastaRecord, write_fasta

        bad_ref = tmp_path / "wrong.fa"
        write_fasta(bad_ref, [FastaRecord("other", "", "ACGT" * 100)])
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(bad_ref),
                "--out", str(tmp_path / "x.vcf"),
            ]
        )
        assert rc == 2


class TestPileupKnobs:
    def test_defaults_match_explicit(self, workspace):
        """Passing the documented defaults changes nothing."""
        outs = {}
        for label, extra in (
            ("default", []),
            ("explicit", ["--min-mapq", "0", "--min-baseq", "6"]),
        ):
            out = workspace / f"calls_knobs_{label}.vcf"
            rc = main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                ]
                + extra
            )
            assert rc == 0
            outs[label] = out.read_bytes()
        assert outs["default"] == outs["explicit"]

    def test_min_mapq_above_reads_drops_all_calls(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_mapq_all.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--min-mapq", "100",  # simulated reads carry mapq 60
            ]
        )
        assert rc == 0
        _, records = read_vcf(out)
        assert records == []

    def test_min_baseq_strict_reduces_depth(self, workspace):
        import json

        depths = {}
        for label, baseq in (("loose", "6"), ("strict", "38")):
            out = workspace / f"calls_baseq_{label}.vcf"
            stats = workspace / f"stats_baseq_{label}.json"
            rc = main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                    "--min-baseq", baseq,
                    "--stats-json", str(stats),
                ]
            )
            assert rc == 0
            depths[label] = json.loads(stats.read_text())["stats"]["tests_run"]
        # A strict base-quality floor must prune observations (fewer
        # candidate tests), not leave the pileup untouched.
        assert depths["strict"] < depths["loose"]

    def test_max_depth_caps_reported_depth(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_capped.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--max-depth", "50",
            ]
        )
        assert rc == 0
        _, records = read_vcf(out)
        assert records, "capped run should still call the strong variants"
        assert all(int(r.info["DP"]) <= 50 for r in records)

    def test_knobs_identical_across_engines(self, workspace):
        """The columnar BAM path must honour the pileup knobs exactly
        like the streaming path."""
        outs = {}
        for engine in ("streaming", "batched"):
            out = workspace / f"calls_knobs_{engine}.vcf"
            rc = main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                    "--engine", engine,
                    "--min-baseq", "20",
                    "--max-depth", "80",
                ]
            )
            assert rc == 0
            outs[engine] = out.read_bytes()
        assert outs["streaming"] == outs["batched"]

    def test_invalid_max_depth_errors(self, workspace, tmp_path):
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(tmp_path / "x.vcf"),
                "--max-depth", "0",
            ]
        )
        assert rc == 2

    def test_merge_mapq_identical_across_engines(self, workspace):
        """--merge-mapq folds per-read mapping quality into the error
        model; the batched engine's fused-table path must match the
        streaming engine byte-for-byte."""
        outs = {}
        for engine in ("streaming", "batched"):
            out = workspace / f"calls_mergemapq_{engine}.vcf"
            rc = main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                    "--engine", engine,
                    "--merge-mapq",
                ]
            )
            assert rc == 0
            outs[engine] = out.read_bytes()
        assert outs["streaming"] == outs["batched"]

    def test_merge_mapq_changes_error_model(self, workspace):
        """The merge is not a no-op: with mapping qualities folded in,
        per-read error probabilities rise, so the emitted QUAL values
        must differ from the base-quality-only run somewhere."""
        outs = {}
        for label, extra in (("plain", []), ("merged", ["--merge-mapq"])):
            out = workspace / f"calls_mergeeffect_{label}.vcf"
            rc = main(
                [
                    "call", str(workspace / "sample.bam"),
                    "--reference", str(workspace / "ref.fa"),
                    "--out", str(out),
                ]
                + extra
            )
            assert rc == 0
            outs[label] = out.read_bytes()
        assert outs["plain"] != outs["merged"]


class TestNewCallFlags:
    def test_output_format_jsonl(self, workspace):
        import json

        out = workspace / "calls.jsonl"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--output-format", "jsonl",
            ]
        )
        assert rc == 0
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert lines and all("chrom" in d and "af" in d for d in lines)

    def test_stats_json(self, workspace):
        import json

        out = workspace / "calls_sj.vcf"
        stats = workspace / "stats.json"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--stats-json", str(stats),
            ]
        )
        assert rc == 0
        payload = json.loads(stats.read_text())
        assert payload["stats"]["columns_seen"] > 0
        assert payload["n_pass"] <= payload["n_calls"]

    def test_all_contigs_single_contig_matches_default(self, workspace):
        default = workspace / "calls_def.vcf"
        allctg = workspace / "calls_all.vcf"
        main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(default),
            ]
        )
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(allctg),
                "--all-contigs",
            ]
        )
        assert rc == 0
        assert default.read_bytes() == allctg.read_bytes()


class TestCompareUpset:
    @pytest.fixture(scope="class")
    def handmade_vcfs(self, tmp_path_factory):
        """Small VCFs with controlled PASS / failing records."""
        from repro.io.vcf import VcfRecord, write_vcf

        root = tmp_path_factory.mktemp("cmp")

        def rec(pos, filt="PASS"):
            return VcfRecord(
                chrom="c", pos=pos, ref="A", alt="T", qual=60.0, filter=filt
            )

        paths = {}
        specs = {
            "a": [rec(1), rec(2), rec(9, filt="sb")],
            "b": [rec(1), rec(5)],
            # Same PASS/'.' set as "a": the sb-failing record is
            # replaced by a dot-filtered record at another position.
            "a_like": [rec(1), rec(2, filt="."), rec(7, filt="min_dp")],
        }
        for name, records in specs.items():
            paths[name] = root / f"{name}.vcf"
            write_vcf(paths[name], records)
        return paths

    def test_compare_identical(self, workspace, capsys):
        rc = main(
            ["compare", str(workspace / "calls2.vcf"), str(workspace / "calls2.vcf")]
        )
        assert rc == 0
        assert "jaccard 1.000" in capsys.readouterr().out

    def test_compare_different(self, workspace, capsys):
        rc = main(
            ["compare", str(workspace / "calls2.vcf"), str(workspace / "truth.vcf")]
        )
        # truth has filter '.', compare counts it; sets may differ -> rc 1 or 0
        out = capsys.readouterr().out
        assert "shared" in out

    def test_upset_renders(self, workspace, capsys):
        rc = main(
            [
                "upset",
                str(workspace / "calls2.vcf"),
                str(workspace / "truth.vcf"),
                "--labels", "calls", "truth",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "calls" in out and "truth" in out
        assert "Set totals:" in out

    def test_upset_label_mismatch(self, workspace, capsys):
        rc = main(
            [
                "upset", str(workspace / "calls2.vcf"),
                "--labels", "a", "b",
            ]
        )
        assert rc == 2
        assert "--labels count" in capsys.readouterr().err

    def test_compare_different_sets_exit_1(self, handmade_vcfs, capsys):
        rc = main(["compare", str(handmade_vcfs["a"]), str(handmade_vcfs["b"])])
        assert rc == 1
        out = capsys.readouterr().out
        assert "shared" in out

    def test_compare_ignores_failing_filters(self, handmade_vcfs, capsys):
        """Only PASS and '.' records count: 'a' and 'a_like' differ in
        their failing records but share the same effective set."""
        rc = main(
            ["compare", str(handmade_vcfs["a"]), str(handmade_vcfs["a_like"])]
        )
        assert rc == 0
        assert "jaccard 1.000" in capsys.readouterr().out

    def test_upset_default_labels_are_paths(self, handmade_vcfs, capsys):
        rc = main(
            ["upset", str(handmade_vcfs["a"]), str(handmade_vcfs["b"])]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "a.vcf" in out and "b.vcf" in out

    def test_upset_excludes_failing_filters(self, handmade_vcfs, capsys):
        rc = main(
            [
                "upset", str(handmade_vcfs["a"]),
                "--labels", "only",
            ]
        )
        assert rc == 0
        # Two of the three records pass the PASS/'.' filter.
        import re

        assert re.search(r"only\s+2\b", capsys.readouterr().out)

    def test_upset_single_vcf_matching_label_ok(self, handmade_vcfs, capsys):
        rc = main(
            ["upset", str(handmade_vcfs["b"]), "--labels", "bee"]
        )
        assert rc == 0
        assert "bee" in capsys.readouterr().out


class TestLegacyParallelFlag:
    def test_legacy_flag_runs_and_warns(self, workspace, capsys):
        out = workspace / "calls_legacy.vcf"
        rc = main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--legacy-parallel", "--workers", "4",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "double-filtering" in captured.err
        assert out.exists()

    def test_legacy_flag_output_well_formed(self, workspace):
        from repro.io.vcf import read_vcf

        out = workspace / "calls_legacy2.vcf"
        main(
            [
                "call", str(workspace / "sample.bam"),
                "--reference", str(workspace / "ref.fa"),
                "--out", str(out),
                "--legacy-parallel", "--workers", "2",
            ]
        )
        _, records = read_vcf(out)
        assert records, "legacy mode should still find the strong variants"


class TestIndexSubcommand:
    def test_writes_default_bai(self, workspace, capsys):
        bam = workspace / "sample.bam"
        rc = main(["index", str(bam)])
        assert rc == 0
        sidecar = workspace / "sample.bam.bai"
        assert sidecar.exists()
        assert sidecar.read_bytes()[:4] == b"BAI\x01"
        assert "wrote BAI index" in capsys.readouterr().out

    def test_writes_linear_with_out(self, workspace, capsys):
        bam = workspace / "sample.bam"
        out = workspace / "custom.rmi"
        rc = main(
            ["index", str(bam), "--format", "linear",
             "--out", str(out), "--granularity", "64"]
        )
        assert rc == 0
        assert out.read_bytes()[:4] == b"RMI1"
        assert "wrote linear index" in capsys.readouterr().out

    def test_bai_loads_back(self, workspace):
        from repro.io.bai import BaiIndex

        bam = workspace / "sample.bam"
        main(["index", str(bam)])
        index = BaiIndex.load(workspace / "sample.bam.bai")
        assert len(index.references) == 1

    def test_missing_bam_errors(self, tmp_path, capsys):
        rc = main(["index", str(tmp_path / "absent.bam")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestCallIndexAndCache:
    def test_call_with_bai_index_byte_identical(self, workspace):
        bam = workspace / "sample.bam"
        main(["index", str(bam)])
        outs = {}
        for label, extra in [
            ("plain", []),
            ("indexed", ["--index", str(workspace / "sample.bam.bai")]),
        ]:
            out = workspace / f"calls_idx_{label}.vcf"
            rc = main(
                ["call", str(bam),
                 "--reference", str(workspace / "ref.fa"),
                 "--out", str(out),
                 "--region", "NC_045512.2-sim:101-800",
                 *extra]
            )
            assert rc == 0
            outs[label] = out.read_bytes()
        assert outs["indexed"] == outs["plain"]

    def test_call_with_bad_index_errors(self, workspace, tmp_path, capsys):
        bad = tmp_path / "bad.idx"
        bad.write_bytes(b"JUNKJUNKJUNK")
        rc = main(
            ["call", str(workspace / "sample.bam"),
             "--reference", str(workspace / "ref.fa"),
             "--out", str(tmp_path / "x.vcf"),
             "--index", str(bad)]
        )
        assert rc == 2
        assert "magic" in capsys.readouterr().err

    def test_cache_blocks_threads_through(self, workspace):
        out = workspace / "calls_cached.vcf"
        rc = main(
            ["call", str(workspace / "sample.bam"),
             "--reference", str(workspace / "ref.fa"),
             "--out", str(out),
             "--cache-blocks", "8"]
        )
        assert rc == 0
        base = (workspace / "calls2.vcf").read_bytes()
        assert out.read_bytes() == base

    def test_invalid_cache_blocks_errors(self, workspace, tmp_path, capsys):
        rc = main(
            ["call", str(workspace / "sample.bam"),
             "--reference", str(workspace / "ref.fa"),
             "--out", str(tmp_path / "x.vcf"),
             "--cache-blocks", "0"]
        )
        assert rc == 2
        assert "cache_blocks" in capsys.readouterr().err

    def test_stats_json_has_cache_counters(self, workspace, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        rc = main(
            ["call", str(workspace / "sample.bam"),
             "--reference", str(workspace / "ref.fa"),
             "--out", str(tmp_path / "c.vcf"),
             "--stats-json", str(stats_path)]
        )
        assert rc == 0
        stats = json.loads(stats_path.read_text())["stats"]
        assert stats["cache_misses"] > 0
        assert "cache_hit_rate" in stats


class TestMapqProfile:
    def test_aligner_like_exercises_min_mapq(self, tmp_path):
        """An aligner-like mapq mixture gives --min-mapq something to
        drop: filtered calling sees fewer column bases than unfiltered
        (end-to-end through simulate -> call)."""
        import json

        bam = tmp_path / "mapq.bam"
        ref = tmp_path / "mapq_ref.fa"
        rc = main(
            ["simulate", "--genome-length", "700", "--depth", "200",
             "--variants", "4", "--seed", "5",
             "--mapq-profile", "aligner_like",
             "--out-bam", str(bam), "--out-reference", str(ref)]
        )
        assert rc == 0
        depths = {}
        for label, extra in [
            ("all", []),
            ("filtered", ["--min-mapq", "30"]),
        ]:
            stats_path = tmp_path / f"stats_{label}.json"
            rc = main(
                ["call", str(bam), "--reference", str(ref),
                 "--out", str(tmp_path / f"c_{label}.vcf"),
                 "--stats-json", str(stats_path), *extra]
            )
            assert rc == 0
            depths[label] = json.loads(stats_path.read_text())["stats"][
                "columns_seen"
            ]
        # Dropping low-mapq reads must not see MORE columns; with the
        # aligner_like tail some columns lose all coverage.
        assert depths["filtered"] <= depths["all"]

    def test_constant_profile_matches_default(self, tmp_path):
        """--mapq-profile constant is byte-identical to the historical
        constant-60 stamp (the default)."""
        bams = {}
        for label, extra in [
            ("default", []),
            ("constant", ["--mapq-profile", "constant"]),
        ]:
            bam = tmp_path / f"{label}.bam"
            rc = main(
                ["simulate", "--genome-length", "500", "--depth", "100",
                 "--variants", "3", "--seed", "9",
                 "--out-bam", str(bam), *extra]
            )
            assert rc == 0
            bams[label] = bam.read_bytes()
        assert bams["constant"] == bams["default"]

    def test_merge_mapq_changes_calls_with_profile(self, tmp_path):
        """--merge-mapq has bite on an aligner_like BAM: folding a
        20-mapq read's 1% mis-mapping chance into its base qualities
        shifts the error model (the run completes either way)."""
        bam = tmp_path / "mm.bam"
        ref = tmp_path / "mm_ref.fa"
        main(
            ["simulate", "--genome-length", "600", "--depth", "150",
             "--variants", "3", "--seed", "13",
             "--mapq-profile", "aligner_like",
             "--out-bam", str(bam), "--out-reference", str(ref)]
        )
        for extra in ([], ["--merge-mapq"]):
            rc = main(
                ["call", str(bam), "--reference", str(ref),
                 "--out", str(tmp_path / f"out{len(extra)}.vcf"), *extra]
            )
            assert rc == 0

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["simulate", "--out-bam", "x.bam",
                 "--mapq-profile", "weird"]
            )
