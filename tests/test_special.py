"""Tests for special functions, cross-checked against SciPy (the role
GSL plays upstream)."""

import math

import pytest
from scipy import special as sps

from repro.stats.special import (
    log_gamma,
    log_sum_exp,
    lower_regularized_gamma,
    phred_to_prob,
    prob_to_phred,
    upper_regularized_gamma,
)


class TestLogGamma:
    @pytest.mark.parametrize(
        "x", [0.1, 0.5, 1.0, 1.5, 2.0, 5.0, 10.0, 100.0, 1e4, 1e6]
    )
    def test_matches_scipy(self, x):
        assert log_gamma(x) == pytest.approx(sps.gammaln(x), rel=1e-12)

    def test_factorial_identity(self):
        # Gamma(n+1) = n!
        assert math.exp(log_gamma(6.0)) == pytest.approx(120.0, rel=1e-12)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            log_gamma(0.0)
        with pytest.raises(ValueError):
            log_gamma(-2.5)


class TestRegularizedGamma:
    @pytest.mark.parametrize("a", [0.5, 1.0, 2.0, 10.0, 100.0, 5000.0])
    @pytest.mark.parametrize("ratio", [0.1, 0.5, 0.9, 1.0, 1.1, 2.0, 5.0])
    def test_lower_matches_scipy(self, a, ratio):
        x = a * ratio
        assert lower_regularized_gamma(a, x) == pytest.approx(
            sps.gammainc(a, x), rel=1e-10, abs=1e-300
        )

    @pytest.mark.parametrize("a", [0.5, 1.0, 2.0, 10.0, 100.0, 5000.0])
    @pytest.mark.parametrize("ratio", [0.1, 0.5, 0.9, 1.0, 1.1, 2.0, 5.0])
    def test_upper_matches_scipy(self, a, ratio):
        x = a * ratio
        assert upper_regularized_gamma(a, x) == pytest.approx(
            sps.gammaincc(a, x), rel=1e-10, abs=1e-300
        )

    def test_complementarity(self):
        for a, x in [(3.0, 2.0), (10.0, 15.0), (500.0, 400.0)]:
            total = lower_regularized_gamma(a, x) + upper_regularized_gamma(a, x)
            assert total == pytest.approx(1.0, rel=1e-12)

    def test_x_zero(self):
        assert lower_regularized_gamma(5.0, 0.0) == 0.0
        assert upper_regularized_gamma(5.0, 0.0) == 1.0

    def test_deep_tail_has_relative_accuracy(self):
        # Q(10, 50) ~ 1.7e-13: subtraction-free path must stay accurate.
        ours = upper_regularized_gamma(10.0, 50.0)
        ref = sps.gammaincc(10.0, 50.0)
        assert ours == pytest.approx(ref, rel=1e-8)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            lower_regularized_gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            lower_regularized_gamma(1.0, -1.0)

    def test_monotone_in_x(self):
        values = [lower_regularized_gamma(4.0, x) for x in (0.5, 1, 2, 4, 8, 16)]
        assert values == sorted(values)


class TestHelpers:
    def test_log_sum_exp_basic(self):
        got = log_sum_exp(math.log(0.25), math.log(0.75))
        assert got == pytest.approx(0.0, abs=1e-12)

    def test_log_sum_exp_with_neg_inf(self):
        assert log_sum_exp(-math.inf, 1.5) == 1.5
        assert log_sum_exp(1.5, -math.inf) == 1.5

    def test_log_sum_exp_no_overflow(self):
        got = log_sum_exp(1000.0, 1000.0)
        assert got == pytest.approx(1000.0 + math.log(2.0))

    def test_phred_prob_round_trip(self):
        for q in (2, 10, 20, 30, 41):
            assert prob_to_phred(phred_to_prob(q)) == pytest.approx(q)

    def test_prob_to_phred_caps_at_zero_prob(self):
        assert prob_to_phred(0.0) == 99.0
