"""Tests for the five-dataset paper suite (Figure 3's designed
intersection structure)."""

import pytest

from repro.sim.datasets import PAPER_DEPTHS, paper_dataset_suite


@pytest.fixture(scope="module")
def suite():
    # Small and fast: short genome, deep scaling.
    return paper_dataset_suite(
        genome_length=1500, depth_scale=400.0, panel_scale=12.0, seed=99
    )


class TestStructure:
    def test_five_datasets(self, suite):
        assert len(suite) == 5
        assert [d.spec.paper_depth for d in suite] == list(PAPER_DEPTHS)

    def test_depths_scaled(self, suite):
        for ds in suite:
            assert ds.spec.depth == pytest.approx(
                max(25.0, ds.spec.paper_depth / 400.0)
            )
            assert ds.sample.mean_depth == pytest.approx(ds.spec.depth, rel=0.1)

    def test_same_genome_everywhere(self, suite):
        names = {ds.sample.genome.name for ds in suite}
        assert len(names) == 1
        seqs = {ds.sample.genome.sequence for ds in suite}
        assert len(seqs) == 1

    def test_exactly_two_core_variants_shared_by_all(self, suite):
        key_sets = [ds.panel.keys() for ds in suite]
        core = set.intersection(*key_sets)
        assert len(core) == 2

    def test_deepest_pair_shares_most(self, suite):
        """The 300000x/1000000x pair must share more than any other."""
        key_sets = {ds.label: ds.panel.keys() for ds in suite}
        labels = list(key_sets)
        best_pair, best = None, -1
        for i, a in enumerate(labels):
            for b in labels[i + 1 :]:
                n = len(key_sets[a] & key_sets[b])
                if n > best:
                    best_pair, best = (a, b), n
        assert set(best_pair) == {"300000x", "1000000x"}

    def test_100000x_has_most_unique(self, suite):
        key_sets = {ds.label: ds.panel.keys() for ds in suite}
        unique = {}
        for label, keys in key_sets.items():
            others = set().union(
                *(k for lbl, k in key_sets.items() if lbl != label)
            )
            unique[label] = len(keys - others)
        assert max(unique, key=unique.get) == "100000x"

    def test_panel_refs_match_genome(self, suite):
        for ds in suite:
            ds.panel.validate_against(ds.sample.genome.sequence)

    def test_frequencies_detectable_at_own_depth(self, suite):
        """Every variant should expect several supporting reads, except
        where the frequency cap (50%) binds at very shallow scaling."""
        for ds in suite:
            for v in ds.panel:
                assert v.frequency * ds.spec.depth >= 4.0 or v.frequency >= 0.25

    def test_reproducible(self):
        a = paper_dataset_suite(
            genome_length=800, depth_scale=500.0, panel_scale=20.0, seed=5
        )
        b = paper_dataset_suite(
            genome_length=800, depth_scale=500.0, panel_scale=20.0, seed=5
        )
        for da, db in zip(a, b):
            assert da.panel.keys() == db.panel.keys()
            assert (da.sample.codes == db.sample.codes).all()
