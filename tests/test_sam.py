"""Unit tests for the SAM text codec."""

import io

import numpy as np
import pytest

from repro.io.cigar import parse_cigar
from repro.io.records import AlignedRead, SamHeader
from repro.io.sam import format_record, parse_record, read_sam, write_sam

SAM_LINE = (
    "read1\t16\tchr1\t1235\t42\t3S10M2I5M\tchr2\t100\t-150\t"
    "ACGTACGTACGTACGTACGT\tIIIIIIIIIIIIIIIIIIII\tNM:i:3\tRG:Z:grp1"
)


class TestParseRecord:
    def test_mandatory_fields(self):
        read = parse_record(SAM_LINE)
        assert read.qname == "read1"
        assert read.flag == 16
        assert read.rname == "chr1"
        assert read.pos == 1234  # 1-based text -> 0-based model
        assert read.mapq == 42
        assert read.cigar == parse_cigar("3S10M2I5M")
        assert read.rnext == "chr2"
        assert read.pnext == 99
        assert read.tlen == -150
        assert read.seq == "ACGTACGTACGTACGTACGT"
        assert np.all(read.qual == 40)  # 'I' = Phred 40

    def test_tags(self):
        read = parse_record(SAM_LINE)
        assert read.tags["NM"] == ("i", 3)
        assert read.tags["RG"] == ("Z", "grp1")

    def test_b_array_tag(self):
        line = SAM_LINE + "\tZB:B:i,1,2,3"
        read = parse_record(line)
        sub, arr = read.tags["ZB"][1]
        assert sub == "i"
        assert list(arr) == [1, 2, 3]

    def test_star_seq_and_qual(self):
        line = "r\t4\t*\t0\t0\t*\t*\t0\t0\t*\t*"
        read = parse_record(line)
        assert read.seq == ""
        assert read.is_unmapped

    def test_too_few_fields_raises(self):
        with pytest.raises(ValueError, match="fields"):
            parse_record("a\tb\tc")

    def test_malformed_tag_raises(self):
        with pytest.raises(ValueError, match="tag"):
            parse_record(SAM_LINE + "\tbadtag")


class TestFormatRecord:
    def test_round_trip(self):
        read = parse_record(SAM_LINE)
        again = parse_record(format_record(read))
        assert again.qname == read.qname
        assert again.pos == read.pos
        assert again.cigar == read.cigar
        assert again.tags == read.tags
        assert np.array_equal(again.qual, read.qual)

    def test_float_tag_rendering(self):
        read = parse_record(SAM_LINE + "\tXF:f:2.5")
        assert "XF:f:2.5" in format_record(read)


class TestSamFile:
    def test_file_round_trip(self, tmp_path):
        header = SamHeader(references=[("chr1", 1000)], sort_order="coordinate")
        reads = [
            AlignedRead.simple(f"r{i}", "chr1", i * 10, "ACGT", [30] * 4)
            for i in range(20)
        ]
        path = tmp_path / "t.sam"
        assert write_sam(path, header, reads) == 20
        hdr, record_iter = read_sam(path)
        records = list(record_iter)
        assert hdr.references == [("chr1", 1000)]
        assert hdr.sort_order == "coordinate"
        assert len(records) == 20
        assert [r.qname for r in records] == [f"r{i}" for i in range(20)]

    def test_stream_round_trip(self):
        header = SamHeader(references=[("c", 50)])
        read = AlignedRead.simple("x", "c", 3, "GG", [10, 20])
        buf = io.StringIO()
        write_sam(buf, header, [read])
        buf.seek(0)
        _, records = read_sam(buf)
        (back,) = list(records)
        assert back.qname == "x"
        assert back.pos == 3
        assert np.array_equal(back.qual, [10, 20])

    def test_sam_bam_agreement(self, tmp_path):
        """The two codecs must represent records identically."""
        from repro.io.bam import read_bam, write_bam

        header = SamHeader(references=[("chr1", 500)], sort_order="coordinate")
        reads = [
            AlignedRead.simple(f"r{i}", "chr1", i, "ACGTA", [i % 40 + 2] * 5)
            for i in range(30)
        ]
        sam_path = tmp_path / "x.sam"
        bam_path = tmp_path / "x.bam"
        write_sam(sam_path, header, reads)
        write_bam(bam_path, header, reads)
        _, sam_iter = read_sam(sam_path)
        sam_records = list(sam_iter)
        _, bam_records = read_bam(bam_path)
        for a, b in zip(sam_records, bam_records):
            assert a.qname == b.qname
            assert a.pos == b.pos
            assert a.seq == b.seq
            assert np.array_equal(a.qual, b.qual)
            assert a.cigar == b.cigar
