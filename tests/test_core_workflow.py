"""Tests for the Figure 1b decision workflow."""

import numpy as np
import pytest

from repro.core.config import CallerConfig
from repro.core.results import ColumnDecision, RunStats
from repro.core.workflow import evaluate_column
from repro.pileup.column import BASE_TO_CODE, PileupColumn


def make_column(bases, ref="A", qual=30, pos=0):
    codes = np.array([BASE_TO_CODE[b] for b in bases], dtype=np.uint8)
    n = len(bases)
    rng = np.random.default_rng(1)
    return PileupColumn(
        chrom="c", pos=pos, ref_base=ref,
        base_codes=codes,
        quals=np.full(n, qual, dtype=np.uint8),
        reverse=rng.random(n) < 0.5,
        mapqs=np.full(n, 60, dtype=np.uint8),
    )


def noise_column(depth, n_alt, ref="A", alt="T", qual=30):
    bases = [ref] * (depth - n_alt) + [alt] * n_alt
    return make_column("".join(bases), ref=ref, qual=qual)


class TestDecisions:
    def test_low_coverage_short_circuit(self):
        stats = RunStats()
        col = make_column("AAT")
        calls = evaluate_column(col, 1e-5, CallerConfig(min_coverage=10), stats)
        assert calls == []
        assert stats.decisions == {ColumnDecision.LOW_COVERAGE.value: 1}

    def test_no_candidate(self):
        stats = RunStats()
        col = make_column("A" * 20)
        calls = evaluate_column(col, 1e-5, CallerConfig(), stats)
        assert calls == []
        assert stats.decisions == {ColumnDecision.NO_CANDIDATE.value: 1}

    def test_clear_variant_called_by_both_modes(self):
        col = noise_column(depth=500, n_alt=50)  # 10% AF at Q30: huge signal
        for cfg in (CallerConfig.improved(), CallerConfig.original()):
            stats = RunStats()
            calls = evaluate_column(col, 1e-5, cfg, stats)
            assert len(calls) == 1
            assert calls[0].alt == "T"
            assert calls[0].alt_count == 50
            assert calls[0].used_exact

    def test_noise_column_skipped_by_improved(self):
        """K ~ lambda: improved resolves via approximation alone."""
        depth = 2000
        lam = depth * 1e-3 / 3  # ~0.67 expected specific-allele errors
        col = noise_column(depth=depth, n_alt=1)
        stats = RunStats()
        calls = evaluate_column(col, 1e-5, CallerConfig.improved(), stats)
        assert calls == []
        assert stats.exact_skipped == 1
        assert stats.dp_invocations == 0

    def test_original_never_uses_approximation(self):
        col = noise_column(depth=2000, n_alt=1)
        stats = RunStats()
        evaluate_column(col, 1e-5, CallerConfig.original(), stats)
        assert stats.approx_invocations == 0

    def test_depth_gate_disables_approximation(self):
        """Below approx_min_depth the improved caller behaves exactly
        like the original (paper: gate at depth 100)."""
        col = noise_column(depth=50, n_alt=1)
        stats = RunStats()
        evaluate_column(
            col, 1e-5, CallerConfig.improved(approx_min_depth=100), stats
        )
        assert stats.approx_invocations == 0
        assert stats.dp_invocations == 1

    def test_borderline_phat_falls_through_to_exact(self):
        """p_hat below alpha+margin must trigger the exact DP."""
        # 5 alt reads at depth 300, Q30: lambda=0.1, p_hat tiny -> exact.
        col = noise_column(depth=300, n_alt=5)
        stats = RunStats()
        cfg = CallerConfig.improved(approx_min_depth=100)
        calls = evaluate_column(col, 1e-5, cfg, stats)
        assert stats.approx_invocations == 1
        assert stats.exact_skipped == 0
        assert stats.dp_invocations == 1
        assert len(calls) == 1

    def test_min_alt_count_filter(self):
        col = noise_column(depth=300, n_alt=1, qual=41)
        stats = RunStats()
        cfg = CallerConfig(min_alt_count=2, use_approximation=False,
                           bonferroni=1)
        calls = evaluate_column(col, 0.05, cfg, stats)
        # Even if significant, 1 supporting read < min_alt_count.
        assert calls == []


class TestSubsetGuarantee:
    """The paper's safety property: improved calls are a subset of
    original calls on ANY column (here: randomized columns)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_improved_subset_of_original(self, seed):
        rng = np.random.default_rng(seed)
        depth = int(rng.integers(100, 2000))
        n_alt = int(rng.integers(0, max(2, depth // 50)))
        qual = int(rng.integers(20, 41))
        col = noise_column(depth=depth, n_alt=n_alt, qual=qual)
        alpha_corr = 10.0 ** -float(rng.uniform(3, 7))
        improved = evaluate_column(
            col, alpha_corr, CallerConfig.improved(), RunStats()
        )
        original = evaluate_column(
            col, alpha_corr, CallerConfig.original(), RunStats()
        )
        imp_keys = {c.key for c in improved}
        orig_keys = {c.key for c in original}
        assert imp_keys <= orig_keys


class TestStatsAccounting:
    def test_dp_steps_counted(self):
        col = noise_column(depth=400, n_alt=40)
        stats = RunStats()
        evaluate_column(col, 1e-5, CallerConfig.original(), stats)
        assert stats.dp_steps == 400  # significant column: full DP

    def test_skip_fraction(self):
        stats = RunStats()
        stats.tests_run = 10
        stats.exact_skipped = 4
        assert stats.skip_fraction() == pytest.approx(0.4)

    def test_merge_accumulates(self):
        a = RunStats(columns_seen=2, dp_steps=10)
        a.record_decision(ColumnDecision.CALLED)
        b = RunStats(columns_seen=3, dp_steps=5)
        b.record_decision(ColumnDecision.CALLED)
        b.record_decision(ColumnDecision.SKIPPED_APPROX)
        a.merge(b)
        assert a.columns_seen == 5
        assert a.dp_steps == 15
        assert a.decisions[ColumnDecision.CALLED.value] == 2
        assert a.decisions[ColumnDecision.SKIPPED_APPROX.value] == 1
