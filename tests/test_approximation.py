"""Tests for the Poisson approximation and the Hodges--Le Cam bound --
the mathematical core of the paper's shortcut."""

import numpy as np
import pytest

from repro.stats.approximation import (
    approximation_is_conclusive,
    le_cam_bound,
    poisson_lambda,
    poisson_tail_approx,
)
from repro.stats.poisson_binomial import poibin_sf


class TestLambda:
    def test_is_sum(self, rng):
        p = rng.uniform(0, 0.1, size=100)
        assert poisson_lambda(p) == pytest.approx(p.sum())

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            poisson_lambda(np.ones((2, 2)))


class TestLeCamBound:
    """|p_hat - p| <= sum p_i^2 for every tail event (Hodges-Le Cam
    1960).  This is THE correctness guarantee of the paper's filter."""

    @pytest.mark.parametrize("seed", range(15))
    def test_bound_holds_empirically(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(50, 400))
        p = rng.uniform(0.0, 0.05, size=d)
        bound = le_cam_bound(p)
        lam = p.sum()
        for k in (1, int(lam) + 1, int(lam) + 5, int(2 * lam) + 2):
            exact = poibin_sf(k, p)
            approx = poisson_tail_approx(k, p)
            assert abs(approx - exact) <= bound + 1e-12

    def test_bound_value(self):
        p = np.array([0.1, 0.2, 0.3])
        assert le_cam_bound(p) == pytest.approx(0.01 + 0.04 + 0.09)

    def test_bound_shrinks_with_quality(self):
        """Higher quality (smaller p) => tighter approximation."""
        q30 = le_cam_bound(np.full(1000, 1e-3))
        q20 = le_cam_bound(np.full(1000, 1e-2))
        assert q30 < q20

    def test_margin_dominates_bound_in_practice(self):
        """The paper's 0.01 margin vs the bound for realistic columns:
        at Q30/depth 1e5 the bound is 1e5 * (3.3e-4)^2 ~ 0.011 on the
        raw scale -- same order as the margin, which is why the paper
        calls 0.01 'intentionally conservative' rather than proven."""
        p = np.full(100_000, 1e-3 / 3)
        assert le_cam_bound(p) == pytest.approx(100_000 * (1e-3 / 3) ** 2)


class TestApproxAccuracy:
    def test_approx_close_to_exact_small_p(self, rng):
        p = rng.uniform(0.0001, 0.002, size=2000)
        lam = p.sum()
        for k in (1, int(lam) + 1, int(lam) + 4):
            assert poisson_tail_approx(k, p) == pytest.approx(
                poibin_sf(k, p), abs=le_cam_bound(p)
            )

    def test_accuracy_improves_with_depth(self):
        """The Discussion: 'the error in the Poisson approximation
        vanishes asymptotically as d increases' (for fixed lambda)."""
        lam = 4.0
        errs = []
        for d in (100, 1000, 10_000):
            p = np.full(d, lam / d)
            k = 8
            errs.append(abs(poisson_tail_approx(k, p) - poibin_sf(k, p)))
        assert errs[0] > errs[1] > errs[2]

    def test_k_zero(self, rng):
        assert poisson_tail_approx(0, rng.uniform(0, 0.1, 10)) == 1.0


class TestSkipRule:
    def test_skip_requires_margin(self):
        assert approximation_is_conclusive(0.07, alpha=0.05, margin=0.01)
        assert not approximation_is_conclusive(0.055, alpha=0.05, margin=0.01)

    def test_boundary_is_inclusive(self):
        # 0.05 + 0.01 carries float round-up; compare just above it.
        assert approximation_is_conclusive(0.0600000001, alpha=0.05, margin=0.01)

    def test_small_p_hat_never_skips(self):
        """Significant-looking columns always get the exact test."""
        assert not approximation_is_conclusive(1e-9, alpha=0.05, margin=0.01)
