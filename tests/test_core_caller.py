"""End-to-end caller tests: sensitivity, specificity and the paper's
headline equivalence claim."""

import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.io.regions import Region


class TestRecovery:
    def test_recovers_panel_at_depth(self, sample, panel):
        result = VariantCaller(CallerConfig.improved()).call_sample(sample)
        called = {(c.pos, c.ref, c.alt) for c in result.passed}
        truth = {(v.pos, v.ref, v.alt) for v in panel}
        # 5-20% variants at 200x: all recoverable.
        assert truth <= called

    def test_no_false_positives_on_null(self, null_sample):
        result = VariantCaller(CallerConfig.improved()).call_sample(null_sample)
        assert result.passed == []

    def test_original_no_false_positives_on_null(self, null_sample):
        result = VariantCaller(CallerConfig.original()).call_sample(null_sample)
        assert result.passed == []

    def test_call_fields_consistent(self, sample):
        result = VariantCaller().call_sample(sample)
        for call in result.passed:
            assert 0 < call.alt_count <= call.depth
            assert call.af == pytest.approx(call.alt_count / call.depth)
            assert call.pvalue <= call.corrected_pvalue <= 1.0
            rf, rr, af_, ar = call.dp4
            assert af_ + ar == call.alt_count
            assert call.quality > 0

    def test_calls_sorted_by_position(self, sample):
        result = VariantCaller().call_sample(sample)
        positions = [c.pos for c in result.calls]
        assert positions == sorted(positions)


class TestEquivalenceClaim:
    """Table I: 'the number of variants called was identical between
    versions' -- here strengthened to identical call *sets*."""

    def test_identical_at_200x(self, sample):
        improved = VariantCaller(CallerConfig.improved()).call_sample(sample)
        original = VariantCaller(CallerConfig.original()).call_sample(sample)
        assert improved.keys() == original.keys()

    def test_identical_at_1500x(self, deep_sample):
        improved = VariantCaller(CallerConfig.improved()).call_sample(deep_sample)
        original = VariantCaller(CallerConfig.original()).call_sample(deep_sample)
        assert improved.keys() == original.keys()
        # And the approximation must actually have fired at this depth.
        assert improved.stats.exact_skipped > 0

    def test_improved_does_less_dp_work(self, deep_sample):
        improved = VariantCaller(CallerConfig.improved()).call_sample(deep_sample)
        original = VariantCaller(CallerConfig.original()).call_sample(deep_sample)
        # Most allele tests are resolved without invoking the DP at
        # all (the called columns still run it in full, in both modes).
        assert improved.stats.dp_invocations < original.stats.dp_invocations / 5
        assert improved.stats.dp_steps < original.stats.dp_steps

    def test_zero_margin_still_subset(self, deep_sample):
        """Even with margin 0 (no safety margin at all) the improved
        caller can only lose calls, never gain."""
        aggressive = VariantCaller(
            CallerConfig.improved(approx_margin=0.0)
        ).call_sample(deep_sample)
        original = VariantCaller(CallerConfig.original()).call_sample(deep_sample)
        assert aggressive.keys() <= original.keys()


class TestSubstrates:
    """The same sample through every input path gives the same calls."""

    def test_reads_path_matches_sample_path(self, sample, genome, whole_region):
        caller = VariantCaller()
        via_sample = caller.call_sample(sample)
        via_reads = caller.call_reads(
            sample.reads(), genome.sequence, whole_region
        )
        assert via_sample.keys() == via_reads.keys()

    def test_bam_path_matches_sample_path(self, sample, genome, tmp_path):
        caller = VariantCaller()
        bam = tmp_path / "sample.bam"
        sample.write_bam(bam)
        via_sample = caller.call_sample(sample)
        via_bam = caller.call_bam(bam, genome.sequence)
        assert via_sample.keys() == via_bam.keys()

    def test_region_restriction(self, sample, genome, panel):
        positions = sorted(v.pos for v in panel)
        mid = positions[len(positions) // 2]
        region = Region(genome.name, 0, mid)
        result = VariantCaller().call_sample(sample, region=region)
        assert all(c.pos < mid for c in result.passed)
        truth_in_region = {
            (v.pos, v.ref, v.alt) for v in panel if v.pos < mid
        }
        assert truth_in_region <= {(c.pos, c.ref, c.alt) for c in result.passed}

    def test_region_restriction_uses_region_bonferroni(self, sample, genome):
        """Smaller regions mean fewer tests -> looser threshold; the
        caller must use the region length, not the genome length."""
        region = Region(genome.name, 0, 100)
        caller = VariantCaller(CallerConfig(bonferroni=None))
        assert caller.config.corrected_alpha(len(region)) == pytest.approx(
            0.05 / 300
        )


class TestFilters:
    def test_filter_stage_annotates(self, sample):
        from repro.core.filters import DynamicFilterPolicy

        caller = VariantCaller(
            filter_policy=DynamicFilterPolicy(min_depth=10_000)
        )
        result = caller.call_sample(sample)
        # Everything fails min_dp at 200x.
        assert result.passed == []
        assert all("min_dp" in c.filter for c in result.calls)

    def test_no_filter_policy(self, sample):
        caller = VariantCaller(filter_policy=None)
        result = caller.call_sample(sample)
        assert all(c.filter == "PASS" for c in result.calls)

    def test_finalise_does_not_mutate_input(self, sample):
        """Regression: finalise used to overwrite CallResult.calls in
        place, silently corrupting callers holding the raw result."""
        from repro.core.filters import DynamicFilterPolicy

        caller = VariantCaller(
            filter_policy=DynamicFilterPolicy(min_depth=10_000)
        )
        raw = caller.call_sample(sample, apply_filters=False)
        before = list(raw.calls)
        filtered = caller.finalise(raw)
        assert filtered is not raw
        assert filtered.calls is not raw.calls
        assert raw.calls == before
        assert all(c.filter == "PASS" for c in raw.calls)
        # The filtered copy carries the new labels (everything fails
        # min_dp at 200x) while sharing the stats object.
        assert all("min_dp" in c.filter for c in filtered.calls)
        assert filtered.stats is raw.stats

    def test_finalise_without_policy_is_identity(self, sample):
        caller = VariantCaller(filter_policy=None)
        raw = caller.call_sample(sample, apply_filters=False)
        assert caller.finalise(raw) is raw
