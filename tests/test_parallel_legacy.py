"""Tests reproducing the legacy wrapper's inconsistency and the fix.

The bug needs *borderline* calls to bite: strand-biased artifact calls
whose SB score sits near the Holm cutoff, so that thresholds fitted to
different call subsets flip them.  Clean simulations never produce
those, so the fixture injects amplicon-style strand-biased artifacts
(exactly the failure mode LoFreq's SB filter targets on real data).
"""

import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.filters import DynamicFilterPolicy
from repro.parallel.legacy import legacy_parallel_call
from repro.parallel.openmp import ParallelCallOptions, parallel_call
from repro.sim.genome import random_genome
from repro.sim.haplotypes import ArtifactSpec, random_panel
from repro.sim.reads import ReadSimulator


@pytest.fixture(scope="module")
def artifact_genome():
    return random_genome(2000, seed=201)


@pytest.fixture(scope="module")
def artifact_sample(artifact_genome):
    g = artifact_genome
    panel = random_panel(
        g.sequence, 10, freq_range=(0.03, 0.1), seed=1,
        exclude_positions={100, 600, 1100, 1600},
    )
    artifacts = [
        ArtifactSpec(p, "T" if g.sequence[p] != "T" else "G", rate)
        for p, rate in [(100, 0.04), (600, 0.05), (1100, 0.06), (1600, 0.045)]
    ]
    sim = ReadSimulator(g, panel, read_length=80, artifacts=artifacts)
    return sim.simulate(depth=500, seed=1)


class TestLegacyBug:
    def test_output_depends_on_partitioning(self, artifact_sample, artifact_genome):
        """The defining symptom: different partition counts, different
        results (with everything else identical)."""
        results = {}
        for n in (1, 2, 4, 8):
            r = legacy_parallel_call(
                artifact_sample, artifact_genome.sequence, n_partitions=n,
                config=CallerConfig.improved(),
            )
            results[n] = r.keys()
        distinct = {frozenset(k) for k in results.values()}
        assert len(distinct) > 1, (
            "expected the legacy pipeline to be partition-dependent; "
            f"got identical outputs of sizes {[len(v) for v in results.values()]}"
        )

    def test_openmp_mode_is_partition_independent(
        self, artifact_sample, artifact_genome
    ):
        """The fix: worker count and chunking never change the output,
        even on the artifact-laden sample that trips the legacy mode."""
        outputs = set()
        for n in (1, 2, 4, 8):
            r = parallel_call(
                artifact_sample,
                artifact_genome.sequence,
                options=ParallelCallOptions(n_workers=n, chunk_columns=100 + n),
            )
            outputs.add(frozenset(r.keys()))
        assert len(outputs) == 1

    def test_openmp_matches_single_process(self, artifact_sample, artifact_genome):
        single = VariantCaller(CallerConfig.improved()).call_sample(
            artifact_sample
        )
        par = parallel_call(
            artifact_sample,
            artifact_genome.sequence,
            options=ParallelCallOptions(n_workers=4),
        )
        assert par.keys() == single.keys()

    def test_legacy_diverges_from_single_process(
        self, artifact_sample, artifact_genome
    ):
        """At 4+ partitions the legacy output loses calls the correct
        single-pass pipeline keeps."""
        single = VariantCaller(CallerConfig.improved()).call_sample(
            artifact_sample
        )
        legacy = legacy_parallel_call(
            artifact_sample, artifact_genome.sequence, n_partitions=4
        )
        assert legacy.keys() != single.keys()

    def test_legacy_single_partition_matches_single_run(self, sample, genome):
        """n=1: both filter stages see the same call set, so the double
        filter degenerates to the correct result."""
        one = legacy_parallel_call(sample, genome.sequence, n_partitions=1)
        single = VariantCaller().call_sample(sample)
        assert one.keys() == single.keys()

    def test_process_mode_matches_sequential_emulation(
        self, artifact_sample, artifact_genome
    ):
        seq = legacy_parallel_call(
            artifact_sample, artifact_genome.sequence, n_partitions=3,
            use_processes=False,
        )
        proc = legacy_parallel_call(
            artifact_sample, artifact_genome.sequence, n_partitions=3,
            use_processes=True,
        )
        assert seq.keys() == proc.keys()

    def test_custom_policy_threads_through(self, sample, genome):
        policy = DynamicFilterPolicy(sb_alpha=0.5, holm=False)
        r = legacy_parallel_call(
            sample, genome.sequence, n_partitions=2, filter_policy=policy
        )
        assert isinstance(r.keys(), set)


class TestArtifactSimulation:
    """The strand-biased artifact mechanism itself."""

    def test_artifact_shows_only_on_one_strand(self, artifact_sample):
        from repro.io.regions import Region
        from repro.pileup.column import BASE_TO_CODE
        from repro.pileup.vectorized import pileup_sample

        g = artifact_sample.genome
        (col,) = list(
            pileup_sample(artifact_sample, Region(g.name, 600, 601))
        )
        alt = "T" if g.sequence[600] != "T" else "G"
        fwd, rev = col.strand_counts(BASE_TO_CODE[alt])
        assert fwd >= 5
        # Reverse strand shows at most stray sequencing errors.
        assert rev <= 2

    def test_artifact_validation(self):
        with pytest.raises(ValueError):
            ArtifactSpec(10, "T", 0.0)
        with pytest.raises(ValueError):
            ArtifactSpec(-1, "T", 0.1)
        with pytest.raises(ValueError):
            ArtifactSpec(10, "X", 0.1)

    def test_artifact_beyond_genome_rejected(self, artifact_genome):
        with pytest.raises(ValueError, match="beyond"):
            ReadSimulator(
                artifact_genome, artifacts=[ArtifactSpec(99_999, "T", 0.1)]
            )

    def test_sb_filter_catches_strong_artifact(self):
        """A hard one-strand artifact gets called significant but then
        filtered by strand bias -- the filter doing its job."""
        g = random_genome(500, seed=300)
        pos = 250
        alt = "T" if g.sequence[pos] != "T" else "G"
        sim = ReadSimulator(
            g, artifacts=[ArtifactSpec(pos, alt, 0.15)], read_length=80
        )
        sample = sim.simulate(depth=600, seed=3)
        result = VariantCaller().call_sample(sample)
        artifact_calls = [c for c in result.calls if c.pos == pos]
        assert artifact_calls, "artifact should be significant pre-filter"
        assert all("sb" in c.filter for c in artifact_calls)
