"""Figure 3: the upset plot of SNVs shared across the five datasets.

Paper facts to reproduce in shape:
  * 134 (min) to 885 (max) SNVs per dataset -- scaled down here;
  * exactly two SNVs shared across all five datasets;
  * the two deepest datasets (300,000x / 1,000,000x) share the most
    variants of any pair;
  * the 100,000x dataset has the most unique SNVs.
"""

import pytest

from repro.analysis.upset import compute_upset, render_upset
from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig

from conftest import write_report


@pytest.fixture(scope="module")
def suite_results(figure3_suite):
    caller = VariantCaller(CallerConfig.improved())
    return {ds.label: caller.call_sample(ds.sample) for ds in figure3_suite}


def test_fig3_calling_suite(benchmark, figure3_suite):
    """Time calling the middle (100,000x-analogue) dataset."""
    ds = figure3_suite[2]
    caller = VariantCaller(CallerConfig.improved())
    result = benchmark.pedantic(
        caller.call_sample, args=(ds.sample,), rounds=1, iterations=1
    )
    benchmark.extra_info["dataset"] = ds.label
    benchmark.extra_info["n_calls"] = len(result.passed)


def test_fig3_upset_report(benchmark, figure3_suite, suite_results):
    """Build the upset structure and render the Figure 3 artefact."""
    sets = {label: r.keys() for label, r in suite_results.items()}

    upset = benchmark.pedantic(
        compute_upset, args=(sets,), rounds=1, iterations=1
    )

    lines = [
        "Figure 3 reproduction: SNVs shared across the five datasets",
        "paper: 134-885 SNVs per dataset; 2 shared by all five; "
        "300000x/1000000x share the most for any pair; 100000x has the most "
        "unique SNVs",
        "",
        render_upset(upset),
        "",
    ]

    # Shape checks against the paper's observations.
    totals = upset.totals
    lines.append(f"SNVs per dataset: {totals}")
    shared_all = upset.shared_by_all()
    lines.append(f"shared by all five: {shared_all}")
    pairwise = upset.pairwise_shared()
    best_pair = max(pairwise, key=pairwise.get)
    lines.append(
        "pairwise shared (top 3): "
        + ", ".join(
            f"{a}&{b}={n}"
            for (a, b), n in sorted(pairwise.items(), key=lambda kv: -kv[1])[:3]
        )
    )
    unique = upset.unique_counts()
    most_unique = max(unique, key=unique.get)
    lines.append(f"unique SNVs per dataset: {unique}")

    assert shared_all >= 2, "the all-five core must be recovered"
    assert set(best_pair) == {"300000x", "1000000x"}
    assert most_unique == "100000x"
    truth_sizes = {ds.label: len(ds.panel) for ds in figure3_suite}
    lines.append(f"ground-truth panel sizes: {truth_sizes}")
    write_report("fig3.txt", "\n".join(lines))


def test_fig3_recall_by_depth(benchmark, figure3_suite, suite_results):
    """Sensitivity grows with depth (the force shaping Figure 3's
    per-dataset totals)."""

    def recalls():
        out = {}
        for ds in figure3_suite:
            truth = {
                (ds.sample.genome.name, v.pos, v.ref, v.alt)
                for v in ds.panel
            }
            called = suite_results[ds.label].keys()
            out[ds.label] = len(truth & called) / len(truth)
        return out

    out = benchmark.pedantic(recalls, rounds=1, iterations=1)
    # Every dataset detects a solid majority of its own panel
    # (frequencies were designed to be detectable at its depth).
    for label, recall in out.items():
        assert recall > 0.6, f"{label}: recall {recall:.2f}"
