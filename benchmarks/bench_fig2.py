"""Figure 2: the per-thread execution trace of the parallel caller.

The paper's HPC-Toolkit trace shows (i) minimal thread-coordination
time, (ii) substantial BAM-iteration time, and (iii) one thread
causing a load imbalance because a high-cost partition (a variant
hotspot) landed near the end of the run.  The benchmarks reproduce all
three observables on a workload whose variants cluster in the last 10%
of the genome, and quantify the scheduling comparison the Discussion
makes ("smaller partitions towards the end" / dynamic scheduling to
reduce imbalance).
"""

import pytest

from repro.parallel.openmp import ParallelCallOptions, parallel_call
from repro.parallel.trace import Tracer, imbalance_metrics, render_timeline

from conftest import write_report, write_stats_report

N_WORKERS = 8


def _run(sample, schedule, chunk_columns=64):
    tracer = Tracer()
    result = parallel_call(
        sample,
        sample.genome.sequence,
        options=ParallelCallOptions(
            n_workers=N_WORKERS, schedule=schedule, chunk_columns=chunk_columns,
            backend="thread",
        ),
        tracer=tracer,
    )
    return result, tracer


@pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
def test_fig2_schedule_walltime(benchmark, hotspot_sample, schedule):
    """Wall-clock of the parallel run per scheduling policy."""
    result = benchmark.pedantic(
        _run, args=(hotspot_sample, schedule), rounds=1, iterations=1,
    )
    benchmark.extra_info["schedule"] = schedule
    benchmark.extra_info["imbalance"] = round(
        imbalance_metrics(result[1].events).get("imbalance", 0.0), 3
    )


def test_fig2_trace_report(benchmark, hotspot_sample):
    """The Figure 2 artefact: ASCII timeline + imbalance metrics for a
    coarse-chunk static run (the imbalance case) and a dynamic run."""

    def both():
        # Coarse static chunks: one worker inherits the hotspot tail.
        static = _run(hotspot_sample, "static", chunk_columns=256)
        dynamic = _run(hotspot_sample, "dynamic", chunk_columns=64)
        return static, dynamic

    (static_res, static_tr), (dyn_res, dyn_tr) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    assert static_res.keys() == dyn_res.keys()

    lines = ["Figure 2 reproduction: per-worker traces on the hotspot workload"]
    for label, tracer in (("STATIC, coarse chunks", static_tr),
                          ("DYNAMIC, fine chunks", dyn_tr)):
        m = imbalance_metrics(tracer.events)
        lines.append("")
        lines.append(f"--- {label} ---")
        lines.append(render_timeline(tracer.events, width=96,
                                     n_workers=N_WORKERS))
        lines.append(
            f"imbalance (busy_max/busy_mean): {m['imbalance']:.2f}   "
            f"barrier total: {m['barrier_total'] * 1e3:.1f} ms"
        )
        lines.append(
            "busy-time shares: "
            + ", ".join(
                f"{k.removeprefix('share_')}={m[k]:.1%}"
                for k in sorted(m) if k.startswith("share_")
            )
        )
        # Paper observation (i): coordination time is minimal.
        assert m["share_sched"] < 0.05
        # Paper observation (ii): probability + pileup dominate.
        assert m["share_prob"] + m["share_bam_iter"] > 0.9
    write_report("fig2.txt", "\n".join(lines))
    write_stats_report(
        "fig2_stats.json",
        {
            "static_coarse": static_res.stats,
            "dynamic_fine": dyn_res.stats,
        },
        extra={
            "imbalance": {
                "static_coarse": imbalance_metrics(static_tr.events),
                "dynamic_fine": imbalance_metrics(dyn_tr.events),
            },
            "n_workers": N_WORKERS,
        },
    )
