"""Serving-layer benchmark: cold vs warm request latency.

ISSUE 7 acceptance: a repeat request served from the result cache must
be at least **5x** faster than the cold computation, with the warm
response byte-identical to the cold one and to offline
``Pipeline.run()`` output.  The measurements (and the per-request
``RunStats`` snapshots) land machine-readably in
``benchmarks/out/serve_stats.json``.
"""

import io
import os
import time

import pytest

from repro.io.fasta import write_fasta
from repro.pipeline import BamSource, Pipeline, VcfSink
from repro.serve import ServeClient
from repro.sim.genome import sars_cov_2_like
from repro.sim.haplotypes import random_panel
from repro.sim.reads import ReadSimulator

from conftest import FAST, write_stats_report

#: Warm-path acceptance bar (cold latency / warm latency).
MIN_WARM_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def serve_workspace(tmp_path_factory):
    """A simulated BAM + FASTA big enough that a cold call visibly
    dwarfs a cache lookup."""
    root = tmp_path_factory.mktemp("serve_bench")
    length = 400 if FAST else 1500
    depth = 300 if FAST else 800
    genome = sars_cov_2_like(length=length, seed=777)
    panel = random_panel(
        genome.sequence, 6, freq_range=(0.02, 0.08), seed=777
    )
    sample = ReadSimulator(genome, panel, read_length=100).simulate(
        depth, seed=777
    )
    bam = os.path.join(root, "serve.bam")
    ref = os.path.join(root, "ref.fa")
    sample.write_bam(bam)
    write_fasta(ref, [genome])
    return {"genome": genome, "bam": bam, "ref": ref}


def test_warm_request_speedup(serve_workspace):
    """Cold request computes through the pipeline; the identical warm
    request must come back from the result cache >= 5x faster and
    byte-identical (to the cold body *and* to offline Pipeline.run()).
    """
    genome = serve_workspace["genome"]
    with ServeClient(
        default_reference=serve_workspace["ref"], n_workers=1
    ) as client:
        t0 = time.perf_counter()
        cold = client.call(serve_workspace["bam"])
        cold_s = time.perf_counter() - t0

        warm_times = []
        warm_bodies = []
        for _ in range(5):
            t0 = time.perf_counter()
            warm = client.call(serve_workspace["bam"])
            warm_times.append(time.perf_counter() - t0)
            warm_bodies.append(warm.body)
            assert warm.cached, "repeat request missed the result cache"
        warm_s = min(warm_times)
        serve_stats = client.stats()

    # Byte-identity: warm == cold == offline.
    assert all(body == cold.body for body in warm_bodies)
    source = BamSource(
        serve_workspace["bam"], {genome.name: genome.sequence}
    )
    buf = io.StringIO()
    Pipeline(source, sinks=[VcfSink(buf, contigs=source.contigs)]).run()
    offline_body = buf.getvalue()
    assert cold.body == offline_body, (
        "served body diverged from offline Pipeline.run()"
    )

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    write_stats_report(
        "serve_stats.json",
        {
            "cold": cold.stats,
            "warm": warm.stats,
        },
        extra={
            "workload": {
                "genome_length": len(genome),
                "bam_bytes": os.path.getsize(serve_workspace["bam"]),
                "n_warm_repeats": len(warm_times),
            },
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "speedup": round(speedup, 2),
            "byte_identical": cold.body == offline_body,
            "server": serve_stats,
        },
    )
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm path {speedup:.1f}x vs cold; need >= {MIN_WARM_SPEEDUP}x "
        f"(cold {cold_s * 1e3:.1f} ms, warm {warm_s * 1e3:.3f} ms)"
    )


def test_coalesced_burst_computes_once(serve_workspace):
    """A burst of identical concurrent requests is one computation:
    the coalesced waiters' aggregate latency is a fraction of running
    each cold."""
    import asyncio

    from repro.serve import CallRequest, CallService

    service = CallService(
        default_reference=serve_workspace["ref"], n_workers=2
    )
    request = CallRequest(
        bam=serve_workspace["bam"], reference=serve_workspace["ref"]
    )

    async def burst(n):
        t0 = time.perf_counter()
        responses = await asyncio.gather(
            *(service.submit(request) for _ in range(n))
        )
        return responses, time.perf_counter() - t0

    try:
        responses, elapsed = asyncio.run(burst(8))
        stats = service.stats()
    finally:
        service.close()
    assert stats["computed"] == 1, stats
    assert stats["coalesced"] == 7, stats
    assert len({r.body for r in responses}) == 1
    print(
        f"\n[burst of 8 identical requests: 1 computation, "
        f"{elapsed * 1e3:.1f} ms total]"
    )
