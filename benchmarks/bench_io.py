"""Substrate benchmarks: BGZF / BAM codec throughput and the two
pileup engines.

Not a paper table, but the numbers contextualise Figure 2's "time
spent iterating over the .bam file is substantial" observation for
this Python reproduction, and guard against codec regressions.
"""

import io
import time

import pytest

from repro.io.bam import BamReader, BamWriter
from repro.io.bgzf import BgzfReader, BgzfWriter
from repro.io.regions import Region
from repro.pileup.engine import PileupConfig, pileup
from repro.pileup.vectorized import pileup_sample, pileup_sample_batch

from conftest import FAST, write_stats_report

#: Cross-test collector for the machine-readable report written by
#: ``test_write_io_stats_report`` (file-scoped; pytest runs the tests
#: in definition order).
_IO_STATS: dict = {}


@pytest.fixture(scope="module")
def payload():
    import numpy as np

    rng = np.random.default_rng(0)
    return rng.integers(0, 255, size=4 << 20, dtype=np.uint8).tobytes()


@pytest.fixture(scope="module")
def bam_bytes(table1_workload):
    _, _, samples = table1_workload
    sample = samples[2000]
    buf = io.BytesIO()
    writer = BamWriter(buf, sample.header())
    for read in sample.reads():
        writer.write(read)
    writer.close()
    return buf.getvalue()


def test_bgzf_compress(benchmark, payload):
    def compress():
        buf = io.BytesIO()
        with BgzfWriter(buf) as w:
            w.write(payload)
        return buf.tell()

    size = benchmark(compress)
    benchmark.extra_info["compressed_mb"] = round(size / 1e6, 2)
    _IO_STATS["bgzf_compress"] = {
        "payload_mb": round(len(payload) / 1e6, 2),
        "compressed_mb": round(size / 1e6, 2),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bgzf_decompress(benchmark, payload):
    buf = io.BytesIO()
    with BgzfWriter(buf) as w:
        w.write(payload)
    raw = buf.getvalue()

    def decompress():
        return len(BgzfReader(io.BytesIO(raw)).read())

    n = benchmark(decompress)
    assert n == len(payload)
    _IO_STATS["bgzf_decompress"] = {
        "payload_mb": round(len(payload) / 1e6, 2),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bam_decode(benchmark, bam_bytes):
    def decode():
        with BamReader(io.BytesIO(bam_bytes)) as reader:
            return sum(1 for _ in reader)

    n = benchmark.pedantic(decode, rounds=2, iterations=1)
    benchmark.extra_info["records"] = n
    _IO_STATS["bam_decode"] = {
        "records": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bam_encode(benchmark, table1_workload):
    _, _, samples = table1_workload
    sample = samples[2000]
    reads = sample.read_list()
    header = sample.header()

    def encode():
        buf = io.BytesIO()
        writer = BamWriter(buf, header)
        for read in reads:
            writer.write(read)
        writer.close()
        return buf.tell()

    benchmark.pedantic(encode, rounds=2, iterations=1)
    benchmark.extra_info["records"] = len(reads)
    _IO_STATS["bam_encode"] = {
        "records": len(reads),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_streaming(benchmark, table1_workload):
    genome, _, samples = table1_workload
    sample = samples[2000]
    reads = sample.read_list()
    region = Region(genome.name, 0, len(genome))

    def run():
        return sum(
            1 for _ in pileup(iter(reads), genome.sequence, region,
                              PileupConfig())
        )

    n = benchmark.pedantic(run, rounds=1, iterations=1)
    _IO_STATS["pileup_streaming"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_vectorized(benchmark, table1_workload):
    genome, _, samples = table1_workload
    sample = samples[2000]
    region = Region(genome.name, 0, len(genome))

    def run():
        return sum(1 for _ in pileup_sample(sample, region))

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    _IO_STATS["pileup_vectorized"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_columnar_batch(benchmark, table1_workload):
    """The ColumnBatch spine: same pileup as ``test_pileup_vectorized``
    but returned as one structure-of-arrays batch, no per-column
    views."""
    genome, _, samples = table1_workload
    sample = samples[2000]
    region = Region(genome.name, 0, len(genome))

    def run():
        return pileup_sample_batch(sample, region).n_columns

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    _IO_STATS["pileup_columnar_batch"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def _construction_peak(fn):
    """Peak traced allocation (bytes) while ``fn`` runs."""
    import gc
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_builder_bounded_construction_memory():
    """PR 5 acceptance: the incremental ``ColumnBatchBuilder`` bounds
    pileup-construction memory at one flush window (``batch_columns``)
    while the legacy whole-chunk path grows with the chunk.

    Measured with ``tracemalloc`` over the same reads: the legacy path
    (``pileup_batch_from_reads`` + after-the-fact re-slicing, what
    ``BamSource.batches_for`` did before the builder) materialises the
    whole chunk's flat arrays, so doubling the chunk roughly doubles
    its peak; the builder path's peak stays roughly flat.
    """
    from conftest import FAST

    from repro.io.regions import Region
    from repro.pileup.engine import PileupConfig
    from repro.pileup.vectorized import (
        iter_pileup_batches,
        pileup_batch_from_reads,
    )
    from repro.sim.genome import random_genome
    from repro.sim.reads import ReadSimulator

    length = 3000 if FAST else 6000
    batch_columns = 256
    genome = random_genome(length, gc_content=0.5, name="chrMem", seed=11)
    sample = ReadSimulator(genome, read_length=100).simulate(
        depth=40 if FAST else 60, seed=12
    )
    reads = sample.read_list()
    cfg = PileupConfig()

    def legacy(region):
        def run():
            batch = pileup_batch_from_reads(
                iter(reads), genome.sequence, region, cfg
            )
            for lo in range(0, batch.n_columns, batch_columns):
                batch.slice_columns(
                    lo, min(lo + batch_columns, batch.n_columns)
                )

        return run

    def builder(region):
        def run():
            for _ in iter_pileup_batches(
                iter(reads), genome.sequence, region, cfg,
                batch_columns=batch_columns,
            ):
                pass

        return run

    half = Region(genome.name, 0, length // 2)
    full = Region(genome.name, 0, length)
    peaks = {
        "legacy_half": _construction_peak(legacy(half)),
        "legacy_full": _construction_peak(legacy(full)),
        "builder_half": _construction_peak(builder(half)),
        "builder_full": _construction_peak(builder(full)),
    }
    _IO_STATS["construction_memory"] = {
        "batch_columns": batch_columns,
        "columns_full": length,
        **{k: round(v / 1e6, 3) for k, v in peaks.items()},
        "builder_vs_legacy_full": round(
            peaks["legacy_full"] / peaks["builder_full"], 2
        ),
        "builder_growth_half_to_full": round(
            peaks["builder_full"] / peaks["builder_half"], 2
        ),
        "legacy_growth_half_to_full": round(
            peaks["legacy_full"] / peaks["legacy_half"], 2
        ),
    }
    # The builder's construction memory is bounded by batch_columns,
    # not the chunk: well below the whole-chunk path on the same
    # input, and near-flat as the chunk doubles (loose factors keep
    # allocator noise from flaking CI).
    assert peaks["builder_full"] * 2 < peaks["legacy_full"], peaks
    assert peaks["builder_full"] < peaks["builder_half"] * 1.6, peaks
    # The legacy path genuinely scales with the chunk (the contrast
    # that makes the bound above meaningful).
    assert peaks["legacy_full"] > peaks["legacy_half"] * 1.5, peaks


def test_region_query_block_cache(payload):
    """ISSUE 6 acceptance: repeated region queries against the same
    BGZF file are measurably faster with a warm decompressed-block LRU
    than with the historical single-block reader, and the warm pass's
    hit rate lands in the report.

    The drive loop mimics what indexed region calling does to the
    codec: seek to a chunk's virtual offset, read a region's worth of
    bytes, move to the next chunk -- revisiting the same blocks across
    queries.  Raw BGZF reads (no BAM record decode) keep the measured
    contrast about the cache, not the record parser.
    """
    from conftest import FAST

    from repro.io.bgzf import block_offsets, make_virtual_offset

    buf = io.BytesIO()
    with BgzfWriter(buf) as w:
        w.write(payload)
    raw = buf.getvalue()
    offsets = block_offsets(io.BytesIO(raw))
    # 8 query start points spread over the file, revisited every round.
    starts = offsets[:: max(1, len(offsets) // 8)][:8]
    rounds = 10 if FAST else 40

    def drive(reader):
        total = 0
        for _ in range(rounds):
            for start in starts:
                reader.seek(make_virtual_offset(start, 0))
                total += len(reader.readexact(32768))
        return total

    cold_reader = BgzfReader(io.BytesIO(raw), cache_blocks=1)
    t0 = time.perf_counter()
    n_cold = drive(cold_reader)
    cold_s = time.perf_counter() - t0

    warm_reader = BgzfReader(io.BytesIO(raw), cache_blocks=64)
    t0 = time.perf_counter()
    n_warm = drive(warm_reader)
    warm_s = time.perf_counter() - t0

    assert n_cold == n_warm  # identical bytes either way
    lookups = warm_reader.cache_hits + warm_reader.cache_misses
    hit_rate = warm_reader.cache_hits / lookups
    speedup = cold_s / warm_s
    _IO_STATS["region_query"] = {
        "queries": rounds * len(starts),
        "bytes_per_query": 32768,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "cold_bytes_per_s": round(n_cold / cold_s, 0),
        "warm_bytes_per_s": round(n_warm / warm_s, 0),
        "warm_hit_rate": round(hit_rate, 4),
        "warm_evictions": warm_reader.cache_evictions,
        "cold_blocks_read": cold_reader.blocks_read,
        "warm_blocks_read": warm_reader.blocks_read,
        "speedup": round(speedup, 2),
    }
    # The warm cache must actually win: fewer inflations, mostly hits,
    # measured wall-clock speedup.
    assert warm_reader.blocks_read < cold_reader.blocks_read
    assert hit_rate > 0.5
    assert speedup > 1.0, _IO_STATS["region_query"]


def _bam_bgzf_stream(bam_bytes, target_mb):
    """A BGZF stream of ~target_mb MB built from the synthetic BAM's
    decompressed record bytes (the realistic inflate workload)."""
    inner = BgzfReader(io.BytesIO(bam_bytes)).read()
    reps = max(1, (target_mb << 20) // len(inner))
    blob = inner * reps
    buf = io.BytesIO()
    with BgzfWriter(buf) as writer:
        writer.write(blob)
    return buf.getvalue(), blob


def test_parallel_decompress_pool(bam_bytes):
    """Decompressed bytes/s versus readahead-pool size over the
    synthetic BAM stream; serial and pooled reads must be
    byte-identical, and on a multi-core box the 4-thread pool must
    actually win (zlib releases the GIL)."""
    import os

    raw, blob = _bam_bgzf_stream(bam_bytes, 6 if FAST else 24)

    def drive(threads):
        best, counters = None, {}
        for _ in range(2):  # best-of-2 per pool size
            reader = BgzfReader(
                io.BytesIO(raw), cache_blocks=4, decompress_threads=threads
            )
            t0 = time.perf_counter()
            data = reader.read()
            elapsed = time.perf_counter() - t0
            assert data == blob  # identical bytes at every pool size
            if best is None or elapsed < best:
                best = elapsed
                counters = {
                    "blocks_read": reader.blocks_read,
                    "prefetch_hits": reader.prefetch_hits,
                    "prefetch_wasted": reader.prefetch_wasted,
                    "pool_depth_peak": reader.pool_depth_peak,
                }
            reader.close()
        return best, counters

    serial_s, _ = drive(0)
    curve = {}
    for threads in (1, 2, 4):
        pooled_s, counters = drive(threads)
        curve[str(threads)] = {
            "s": round(pooled_s, 6),
            "bytes_per_s": round(len(blob) / pooled_s, 0),
            "speedup": round(serial_s / pooled_s, 2),
            **counters,
        }
    speedup4 = serial_s / curve["4"]["s"]
    cpus = os.cpu_count() or 1
    _IO_STATS["parallel_decompress"] = {
        "payload_mb": round(len(blob) / 1e6, 2),
        "cpu_count": cpus,
        "serial_s": round(serial_s, 6),
        "serial_bytes_per_s": round(len(blob) / serial_s, 0),
        "threads": curve,
        "speedup_threads4": round(speedup4, 2),
    }
    # The wall-clock gate only arms where the hardware can parallelise
    # (CI runs on >= 4 vCPUs and enforces >= 1.5x from the report).
    if cpus >= 4:
        assert speedup4 >= 1.5, _IO_STATS["parallel_decompress"]
    elif cpus >= 2:
        assert speedup4 >= 1.05, _IO_STATS["parallel_decompress"]


def test_parallel_compress_pool(bam_bytes):
    """Compressed bytes/s versus deflate-pool size; pooled output must
    be bit-identical to the serial writer's."""
    import os

    _, blob = _bam_bgzf_stream(bam_bytes, 4 if FAST else 16)

    def drive(threads):
        best, value = None, None
        for _ in range(2):
            buf = io.BytesIO()
            t0 = time.perf_counter()
            with BgzfWriter(buf, compress_threads=threads) as writer:
                writer.write(blob)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
            value = buf.getvalue()
        return best, value

    serial_s, serial_bytes = drive(0)
    curve = {}
    for threads in (1, 2, 4):
        pooled_s, pooled_bytes = drive(threads)
        assert pooled_bytes == serial_bytes  # bit-for-bit
        curve[str(threads)] = {
            "s": round(pooled_s, 6),
            "bytes_per_s": round(len(blob) / pooled_s, 0),
            "speedup": round(serial_s / pooled_s, 2),
        }
    _IO_STATS["parallel_compress"] = {
        "payload_mb": round(len(blob) / 1e6, 2),
        "cpu_count": os.cpu_count() or 1,
        "serial_s": round(serial_s, 6),
        "serial_bytes_per_s": round(len(blob) / serial_s, 0),
        "threads": curve,
        "speedup_threads4": round(
            serial_s / curve["4"]["s"], 2
        ),
    }


def test_shared_block_cache_counters(bam_bytes):
    """Two readers sharing one block cache: the second inflates
    nothing, and the shared counters stay consistent."""
    from repro.io.bgzf import SharedBlockCache

    raw, blob = _bam_bgzf_stream(bam_bytes, 2 if FAST else 8)
    cache = SharedBlockCache(1024)
    first = BgzfReader(io.BytesIO(raw), cache=cache, cache_key="bam")
    assert first.read() == blob
    second = BgzfReader(io.BytesIO(raw), cache=cache, cache_key="bam")
    assert second.read() == blob
    stats = cache.stats()
    _IO_STATS["shared_cache"] = {
        **stats,
        "first_blocks_read": first.blocks_read,
        "second_blocks_read": second.blocks_read,
        "cross_reader_hit_rate": round(
            stats["hits"] / max(1, stats["hits"] + stats["misses"]), 4
        ),
    }
    first.close()
    second.close()
    # Every one of the second reader's fetches was served by the first
    # reader's inflations.
    assert second.blocks_read == 0
    assert second.cache_hits == first.cache_misses
    # Global counters reconcile with the per-reader ones exactly: the
    # only extra lookups are each reader's single EOF-discovery probe
    # (which readers deliberately exclude from their own counters).
    reader_lookups = (
        first.cache_hits
        + first.cache_misses
        + second.cache_hits
        + second.cache_misses
    )
    assert stats["hits"] + stats["misses"] == reader_lookups + 2


def test_write_io_stats_report(table1_workload):
    """Persist the collected substrate numbers machine-readably (runs
    last in this file; the perf trajectory across PRs reads these)."""
    assert _IO_STATS, "collector never populated"
    # Streaming and columnar pileup must agree on the column census
    # before their timings are comparable.
    if "pileup_streaming" in _IO_STATS and "pileup_columnar_batch" in _IO_STATS:
        assert (
            _IO_STATS["pileup_streaming"]["columns"]
            == _IO_STATS["pileup_columnar_batch"]["columns"]
        )
    write_stats_report(
        "io_stats.json",
        _IO_STATS,
        extra={"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S")},
    )
