"""Substrate benchmarks: BGZF / BAM codec throughput and the two
pileup engines.

Not a paper table, but the numbers contextualise Figure 2's "time
spent iterating over the .bam file is substantial" observation for
this Python reproduction, and guard against codec regressions.
"""

import io
import time

import pytest

from repro.io.bam import BamReader, BamWriter
from repro.io.bgzf import BgzfReader, BgzfWriter
from repro.io.regions import Region
from repro.pileup.engine import PileupConfig, pileup
from repro.pileup.vectorized import pileup_sample, pileup_sample_batch

from conftest import write_stats_report

#: Cross-test collector for the machine-readable report written by
#: ``test_write_io_stats_report`` (file-scoped; pytest runs the tests
#: in definition order).
_IO_STATS: dict = {}


@pytest.fixture(scope="module")
def payload():
    import numpy as np

    rng = np.random.default_rng(0)
    return rng.integers(0, 255, size=4 << 20, dtype=np.uint8).tobytes()


@pytest.fixture(scope="module")
def bam_bytes(table1_workload):
    _, _, samples = table1_workload
    sample = samples[2000]
    buf = io.BytesIO()
    writer = BamWriter(buf, sample.header())
    for read in sample.reads():
        writer.write(read)
    writer.close()
    return buf.getvalue()


def test_bgzf_compress(benchmark, payload):
    def compress():
        buf = io.BytesIO()
        with BgzfWriter(buf) as w:
            w.write(payload)
        return buf.tell()

    size = benchmark(compress)
    benchmark.extra_info["compressed_mb"] = round(size / 1e6, 2)
    _IO_STATS["bgzf_compress"] = {
        "payload_mb": round(len(payload) / 1e6, 2),
        "compressed_mb": round(size / 1e6, 2),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bgzf_decompress(benchmark, payload):
    buf = io.BytesIO()
    with BgzfWriter(buf) as w:
        w.write(payload)
    raw = buf.getvalue()

    def decompress():
        return len(BgzfReader(io.BytesIO(raw)).read())

    n = benchmark(decompress)
    assert n == len(payload)
    _IO_STATS["bgzf_decompress"] = {
        "payload_mb": round(len(payload) / 1e6, 2),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bam_decode(benchmark, bam_bytes):
    def decode():
        with BamReader(io.BytesIO(bam_bytes)) as reader:
            return sum(1 for _ in reader)

    n = benchmark.pedantic(decode, rounds=2, iterations=1)
    benchmark.extra_info["records"] = n
    _IO_STATS["bam_decode"] = {
        "records": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bam_encode(benchmark, table1_workload):
    _, _, samples = table1_workload
    sample = samples[2000]
    reads = sample.read_list()
    header = sample.header()

    def encode():
        buf = io.BytesIO()
        writer = BamWriter(buf, header)
        for read in reads:
            writer.write(read)
        writer.close()
        return buf.tell()

    benchmark.pedantic(encode, rounds=2, iterations=1)
    benchmark.extra_info["records"] = len(reads)
    _IO_STATS["bam_encode"] = {
        "records": len(reads),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_streaming(benchmark, table1_workload):
    genome, _, samples = table1_workload
    sample = samples[2000]
    reads = sample.read_list()
    region = Region(genome.name, 0, len(genome))

    def run():
        return sum(
            1 for _ in pileup(iter(reads), genome.sequence, region,
                              PileupConfig())
        )

    n = benchmark.pedantic(run, rounds=1, iterations=1)
    _IO_STATS["pileup_streaming"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_vectorized(benchmark, table1_workload):
    genome, _, samples = table1_workload
    sample = samples[2000]
    region = Region(genome.name, 0, len(genome))

    def run():
        return sum(1 for _ in pileup_sample(sample, region))

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    _IO_STATS["pileup_vectorized"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_columnar_batch(benchmark, table1_workload):
    """The ColumnBatch spine: same pileup as ``test_pileup_vectorized``
    but returned as one structure-of-arrays batch, no per-column
    views."""
    genome, _, samples = table1_workload
    sample = samples[2000]
    region = Region(genome.name, 0, len(genome))

    def run():
        return pileup_sample_batch(sample, region).n_columns

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    _IO_STATS["pileup_columnar_batch"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_write_io_stats_report(table1_workload):
    """Persist the collected substrate numbers machine-readably (runs
    last in this file; the perf trajectory across PRs reads these)."""
    assert _IO_STATS, "collector never populated"
    # Streaming and columnar pileup must agree on the column census
    # before their timings are comparable.
    if "pileup_streaming" in _IO_STATS and "pileup_columnar_batch" in _IO_STATS:
        assert (
            _IO_STATS["pileup_streaming"]["columns"]
            == _IO_STATS["pileup_columnar_batch"]["columns"]
        )
    write_stats_report(
        "io_stats.json",
        _IO_STATS,
        extra={"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S")},
    )
