"""Substrate benchmarks: BGZF / BAM codec throughput and the two
pileup engines.

Not a paper table, but the numbers contextualise Figure 2's "time
spent iterating over the .bam file is substantial" observation for
this Python reproduction, and guard against codec regressions.
"""

import io
import time

import pytest

from repro.io.bam import BamReader, BamWriter
from repro.io.bgzf import BgzfReader, BgzfWriter
from repro.io.regions import Region
from repro.pileup.engine import PileupConfig, pileup
from repro.pileup.vectorized import pileup_sample, pileup_sample_batch

from conftest import write_stats_report

#: Cross-test collector for the machine-readable report written by
#: ``test_write_io_stats_report`` (file-scoped; pytest runs the tests
#: in definition order).
_IO_STATS: dict = {}


@pytest.fixture(scope="module")
def payload():
    import numpy as np

    rng = np.random.default_rng(0)
    return rng.integers(0, 255, size=4 << 20, dtype=np.uint8).tobytes()


@pytest.fixture(scope="module")
def bam_bytes(table1_workload):
    _, _, samples = table1_workload
    sample = samples[2000]
    buf = io.BytesIO()
    writer = BamWriter(buf, sample.header())
    for read in sample.reads():
        writer.write(read)
    writer.close()
    return buf.getvalue()


def test_bgzf_compress(benchmark, payload):
    def compress():
        buf = io.BytesIO()
        with BgzfWriter(buf) as w:
            w.write(payload)
        return buf.tell()

    size = benchmark(compress)
    benchmark.extra_info["compressed_mb"] = round(size / 1e6, 2)
    _IO_STATS["bgzf_compress"] = {
        "payload_mb": round(len(payload) / 1e6, 2),
        "compressed_mb": round(size / 1e6, 2),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bgzf_decompress(benchmark, payload):
    buf = io.BytesIO()
    with BgzfWriter(buf) as w:
        w.write(payload)
    raw = buf.getvalue()

    def decompress():
        return len(BgzfReader(io.BytesIO(raw)).read())

    n = benchmark(decompress)
    assert n == len(payload)
    _IO_STATS["bgzf_decompress"] = {
        "payload_mb": round(len(payload) / 1e6, 2),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bam_decode(benchmark, bam_bytes):
    def decode():
        with BamReader(io.BytesIO(bam_bytes)) as reader:
            return sum(1 for _ in reader)

    n = benchmark.pedantic(decode, rounds=2, iterations=1)
    benchmark.extra_info["records"] = n
    _IO_STATS["bam_decode"] = {
        "records": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_bam_encode(benchmark, table1_workload):
    _, _, samples = table1_workload
    sample = samples[2000]
    reads = sample.read_list()
    header = sample.header()

    def encode():
        buf = io.BytesIO()
        writer = BamWriter(buf, header)
        for read in reads:
            writer.write(read)
        writer.close()
        return buf.tell()

    benchmark.pedantic(encode, rounds=2, iterations=1)
    benchmark.extra_info["records"] = len(reads)
    _IO_STATS["bam_encode"] = {
        "records": len(reads),
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_streaming(benchmark, table1_workload):
    genome, _, samples = table1_workload
    sample = samples[2000]
    reads = sample.read_list()
    region = Region(genome.name, 0, len(genome))

    def run():
        return sum(
            1 for _ in pileup(iter(reads), genome.sequence, region,
                              PileupConfig())
        )

    n = benchmark.pedantic(run, rounds=1, iterations=1)
    _IO_STATS["pileup_streaming"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_vectorized(benchmark, table1_workload):
    genome, _, samples = table1_workload
    sample = samples[2000]
    region = Region(genome.name, 0, len(genome))

    def run():
        return sum(1 for _ in pileup_sample(sample, region))

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    _IO_STATS["pileup_vectorized"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def test_pileup_columnar_batch(benchmark, table1_workload):
    """The ColumnBatch spine: same pileup as ``test_pileup_vectorized``
    but returned as one structure-of-arrays batch, no per-column
    views."""
    genome, _, samples = table1_workload
    sample = samples[2000]
    region = Region(genome.name, 0, len(genome))

    def run():
        return pileup_sample_batch(sample, region).n_columns

    n = benchmark.pedantic(run, rounds=2, iterations=1)
    _IO_STATS["pileup_columnar_batch"] = {
        "columns": n,
        "best_s": round(benchmark.stats.stats.min, 6),
    }


def _construction_peak(fn):
    """Peak traced allocation (bytes) while ``fn`` runs."""
    import gc
    import tracemalloc

    gc.collect()
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_builder_bounded_construction_memory():
    """PR 5 acceptance: the incremental ``ColumnBatchBuilder`` bounds
    pileup-construction memory at one flush window (``batch_columns``)
    while the legacy whole-chunk path grows with the chunk.

    Measured with ``tracemalloc`` over the same reads: the legacy path
    (``pileup_batch_from_reads`` + after-the-fact re-slicing, what
    ``BamSource.batches_for`` did before the builder) materialises the
    whole chunk's flat arrays, so doubling the chunk roughly doubles
    its peak; the builder path's peak stays roughly flat.
    """
    from conftest import FAST

    from repro.io.regions import Region
    from repro.pileup.engine import PileupConfig
    from repro.pileup.vectorized import (
        iter_pileup_batches,
        pileup_batch_from_reads,
    )
    from repro.sim.genome import random_genome
    from repro.sim.reads import ReadSimulator

    length = 3000 if FAST else 6000
    batch_columns = 256
    genome = random_genome(length, gc_content=0.5, name="chrMem", seed=11)
    sample = ReadSimulator(genome, read_length=100).simulate(
        depth=40 if FAST else 60, seed=12
    )
    reads = sample.read_list()
    cfg = PileupConfig()

    def legacy(region):
        def run():
            batch = pileup_batch_from_reads(
                iter(reads), genome.sequence, region, cfg
            )
            for lo in range(0, batch.n_columns, batch_columns):
                batch.slice_columns(
                    lo, min(lo + batch_columns, batch.n_columns)
                )

        return run

    def builder(region):
        def run():
            for _ in iter_pileup_batches(
                iter(reads), genome.sequence, region, cfg,
                batch_columns=batch_columns,
            ):
                pass

        return run

    half = Region(genome.name, 0, length // 2)
    full = Region(genome.name, 0, length)
    peaks = {
        "legacy_half": _construction_peak(legacy(half)),
        "legacy_full": _construction_peak(legacy(full)),
        "builder_half": _construction_peak(builder(half)),
        "builder_full": _construction_peak(builder(full)),
    }
    _IO_STATS["construction_memory"] = {
        "batch_columns": batch_columns,
        "columns_full": length,
        **{k: round(v / 1e6, 3) for k, v in peaks.items()},
        "builder_vs_legacy_full": round(
            peaks["legacy_full"] / peaks["builder_full"], 2
        ),
        "builder_growth_half_to_full": round(
            peaks["builder_full"] / peaks["builder_half"], 2
        ),
        "legacy_growth_half_to_full": round(
            peaks["legacy_full"] / peaks["legacy_half"], 2
        ),
    }
    # The builder's construction memory is bounded by batch_columns,
    # not the chunk: well below the whole-chunk path on the same
    # input, and near-flat as the chunk doubles (loose factors keep
    # allocator noise from flaking CI).
    assert peaks["builder_full"] * 2 < peaks["legacy_full"], peaks
    assert peaks["builder_full"] < peaks["builder_half"] * 1.6, peaks
    # The legacy path genuinely scales with the chunk (the contrast
    # that makes the bound above meaningful).
    assert peaks["legacy_full"] > peaks["legacy_half"] * 1.5, peaks


def test_region_query_block_cache(payload):
    """ISSUE 6 acceptance: repeated region queries against the same
    BGZF file are measurably faster with a warm decompressed-block LRU
    than with the historical single-block reader, and the warm pass's
    hit rate lands in the report.

    The drive loop mimics what indexed region calling does to the
    codec: seek to a chunk's virtual offset, read a region's worth of
    bytes, move to the next chunk -- revisiting the same blocks across
    queries.  Raw BGZF reads (no BAM record decode) keep the measured
    contrast about the cache, not the record parser.
    """
    from conftest import FAST

    from repro.io.bgzf import block_offsets, make_virtual_offset

    buf = io.BytesIO()
    with BgzfWriter(buf) as w:
        w.write(payload)
    raw = buf.getvalue()
    offsets = block_offsets(io.BytesIO(raw))
    # 8 query start points spread over the file, revisited every round.
    starts = offsets[:: max(1, len(offsets) // 8)][:8]
    rounds = 10 if FAST else 40

    def drive(reader):
        total = 0
        for _ in range(rounds):
            for start in starts:
                reader.seek(make_virtual_offset(start, 0))
                total += len(reader.readexact(32768))
        return total

    cold_reader = BgzfReader(io.BytesIO(raw), cache_blocks=1)
    t0 = time.perf_counter()
    n_cold = drive(cold_reader)
    cold_s = time.perf_counter() - t0

    warm_reader = BgzfReader(io.BytesIO(raw), cache_blocks=64)
    t0 = time.perf_counter()
    n_warm = drive(warm_reader)
    warm_s = time.perf_counter() - t0

    assert n_cold == n_warm  # identical bytes either way
    lookups = warm_reader.cache_hits + warm_reader.cache_misses
    hit_rate = warm_reader.cache_hits / lookups
    speedup = cold_s / warm_s
    _IO_STATS["region_query"] = {
        "queries": rounds * len(starts),
        "bytes_per_query": 32768,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "cold_bytes_per_s": round(n_cold / cold_s, 0),
        "warm_bytes_per_s": round(n_warm / warm_s, 0),
        "warm_hit_rate": round(hit_rate, 4),
        "warm_evictions": warm_reader.cache_evictions,
        "cold_blocks_read": cold_reader.blocks_read,
        "warm_blocks_read": warm_reader.blocks_read,
        "speedup": round(speedup, 2),
    }
    # The warm cache must actually win: fewer inflations, mostly hits,
    # measured wall-clock speedup.
    assert warm_reader.blocks_read < cold_reader.blocks_read
    assert hit_rate > 0.5
    assert speedup > 1.0, _IO_STATS["region_query"]


def test_write_io_stats_report(table1_workload):
    """Persist the collected substrate numbers machine-readably (runs
    last in this file; the perf trajectory across PRs reads these)."""
    assert _IO_STATS, "collector never populated"
    # Streaming and columnar pileup must agree on the column census
    # before their timings are comparable.
    if "pileup_streaming" in _IO_STATS and "pileup_columnar_batch" in _IO_STATS:
        assert (
            _IO_STATS["pileup_streaming"]["columns"]
            == _IO_STATS["pileup_columnar_batch"]["columns"]
        )
    write_stats_report(
        "io_stats.json",
        _IO_STATS,
        extra={"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S")},
    )
