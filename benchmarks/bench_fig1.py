"""Figure 1: (a) the Poisson approximation vs the Poisson-binomial
distribution at a deep column; (b) the improved workflow's decision
census.

Figure 1a in the paper plots the Poisson-binomial pmf (bars) against
the continuous Poisson approximation (red line) with the right-tail
test statistics shaded.  The report regenerates that data as a series
(k, pmf_exact, pmf_poisson, tail_exact, tail_poisson) plus the
Hodges--Le Cam bound.  Figure 1b is the workflow diagram; its
quantitative content is the decision census -- what fraction of allele
tests end in each terminal state -- which the second benchmark emits.
"""

import numpy as np
import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.stats.approximation import le_cam_bound, poisson_lambda
from repro.stats.poisson import poisson_pmf, poisson_sf
from repro.stats.poisson_binomial import poibin_pmf_dp, poibin_sf_dp

from conftest import write_report


@pytest.fixture(scope="module")
def deep_column_probs():
    """Per-read specific-allele error probabilities for one deep
    column: depth 2,000, heterogeneous qualities Q20-Q40."""
    rng = np.random.default_rng(11)
    quals = rng.uniform(20, 40, size=2000)
    return (10.0 ** (-quals / 10.0)) / 3.0


def test_fig1a_distribution_series(benchmark, deep_column_probs):
    """Regenerate Figure 1a's plotted data."""
    p = deep_column_probs

    def compute():
        pmf_exact = poibin_pmf_dp(p)
        lam = poisson_lambda(p)
        return pmf_exact, lam

    pmf_exact, lam = benchmark.pedantic(compute, rounds=1, iterations=1)
    k_max = int(lam) + 12
    lines = [
        "Figure 1a reproduction: Poisson-binomial pmf vs Poisson approximation",
        f"column depth d = {p.size}, lambda = sum p_i = {lam:.4f}, "
        f"Le Cam bound sum p_i^2 = {le_cam_bound(p):.2e}",
        "",
        f"{'k':>4} {'pmf exact':>12} {'pmf Poisson':>12} "
        f"{'tail exact':>12} {'tail Poisson':>12}",
    ]
    max_tail_err = 0.0
    for k in range(0, k_max):
        tail_exact = poibin_sf_dp(k, p).pvalue
        tail_pois = poisson_sf(k, lam)
        max_tail_err = max(max_tail_err, abs(tail_exact - tail_pois))
        bar = "#" * int(round(pmf_exact[k] * 120))
        lines.append(
            f"{k:>4} {pmf_exact[k]:>12.6f} {poisson_pmf(k, lam):>12.6f} "
            f"{tail_exact:>12.6f} {tail_pois:>12.6f}  {bar}"
        )
    lines.append("")
    lines.append(
        f"max |tail_exact - tail_poisson| over k: {max_tail_err:.3e} "
        f"(<= Le Cam bound {le_cam_bound(p):.3e})"
    )
    assert max_tail_err <= le_cam_bound(p) + 1e-12
    write_report("fig1a.txt", "\n".join(lines))


def test_fig1b_workflow_census(benchmark, table1_workload):
    """The workflow of Figure 1b, measured: decision-path fractions on
    a deep dataset under the improved caller -- and the batched
    engine's census, which must be identical."""
    _, _, samples = table1_workload
    sample = samples[max(samples)]

    def run():
        return VariantCaller(CallerConfig.improved()).call_sample(sample)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    batched = VariantCaller(
        CallerConfig.improved(engine="batched")
    ).call_sample(sample)
    assert batched.stats.decisions == result.stats.decisions
    assert batched.keys() == result.keys()
    stats = result.stats
    total = stats.tests_run
    lines = [
        "Figure 1b reproduction: decision census of the improved workflow",
        f"dataset: {sample.mean_depth:.0f}x, {stats.columns_seen} columns, "
        f"{total} allele tests",
        "",
        f"{'terminal state':<24} {'count':>8} {'fraction':>9}",
    ]
    for state, count in sorted(stats.decisions.items(), key=lambda kv: -kv[1]):
        if state in ("low_coverage", "no_candidate"):
            continue
        lines.append(f"{state:<24} {count:>8} {count / total:>8.1%}")
    lines.append("")
    lines.append(
        f"exact DP skipped via Poisson first pass: {stats.exact_skipped} "
        f"({stats.skip_fraction():.1%} of tests)"
    )
    lines.append(
        f"approximation evaluations: {stats.approx_invocations}, "
        f"exact DP invocations: {stats.dp_invocations}"
    )
    lines.append(
        "batched engine census identical: "
        f"{batched.stats.decisions == stats.decisions}"
    )
    assert stats.skip_fraction() > 0.5
    write_report("fig1b.txt", "\n".join(lines))
