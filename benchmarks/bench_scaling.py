"""Worker-count scaling of the parallel caller (Section III-B's
profiling context).

The paper profiles its OpenMP build on a 128-thread KNL; we measure
strong scaling of the process backend (real CPU parallelism -- the
thread backend models scheduling behaviour but the probability stage is
partly GIL-bound in Python) and report parallel efficiency.
"""

import time

import pytest

from repro.parallel.openmp import ParallelCallOptions, parallel_call

from conftest import FAST, write_report, write_stats_report

WORKER_COUNTS = [1, 2, 4, 8]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_scaling_walltime(benchmark, hotspot_sample, workers):
    sample = hotspot_sample

    def run():
        return parallel_call(
            sample,
            sample.genome.sequence,
            options=ParallelCallOptions(
                n_workers=workers, backend="process", schedule="static",
            ),
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["workers"] = workers


def test_scaling_report(benchmark, hotspot_sample):
    sample = hotspot_sample

    def sweep():
        rows = []
        reference = None
        for workers in WORKER_COUNTS:
            t0 = time.perf_counter()
            result = parallel_call(
                sample,
                sample.genome.sequence,
                options=ParallelCallOptions(
                    n_workers=workers, backend="process", schedule="static",
                ),
            )
            wall = time.perf_counter() - t0
            if reference is None:
                reference = result.keys()
            assert result.keys() == reference
            rows.append((workers, wall, result.stats))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_stats_report(
        "scaling_stats.json",
        {f"workers{workers}": stats for workers, _, stats in rows},
        extra={"wall_s": {workers: round(wall, 6) for workers, wall, _ in rows}},
    )
    rows = [(workers, wall) for workers, wall, _ in rows]
    t1 = rows[0][1]
    lines = [
        "Strong scaling of the parallel caller (process backend, "
        "static schedule)",
        f"workload: {sample.mean_depth:.0f}x over "
        f"{len(sample.genome)} columns",
        "",
        f"{'workers':>8} {'wall (s)':>9} {'speed-up':>9} {'efficiency':>11}",
    ]
    for workers, wall in rows:
        speedup = t1 / wall
        lines.append(
            f"{workers:>8} {wall:>9.3f} {speedup:>8.2f}x "
            f"{speedup / workers:>10.1%}"
        )
    # Sanity: more workers should not be dramatically slower (allow
    # fork/IPC overhead at this small scale to eat the gains).  In the
    # FAST smoke profile the workload is so small that fork overhead
    # alone exceeds the compute; only the output-identity assertions
    # above are meaningful there.
    if not FAST:
        assert rows[-1][1] < t1 * 1.5
    lines.append("")
    lines.append(
        "output identical at every worker count (asserted); absolute "
        "scaling is bounded by fork/merge overhead at this toy size."
    )
    write_report("scaling.txt", "\n".join(lines))


def test_e2e_decompress_threads_curve(tmp_path_factory, hotspot_sample):
    """End-to-end ``Pipeline.run()`` wall clock over a BAM as the BGZF
    readahead pool grows; calls must be identical at every pool size.
    The curve is merged into ``io_stats.json`` next to bench_io's
    block-level numbers (one report, two granularities)."""
    from conftest import merge_stats_report

    from repro.pipeline import BamSource, Pipeline

    sample = hotspot_sample
    root = tmp_path_factory.mktemp("e2e_pool")
    bam = root / "hotspot.bam"
    sample.write_bam(bam)

    curve = {}
    reference = None
    for threads in (0, 1, 2, 4):
        best = None
        stats = None
        for _ in range(1 if FAST else 2):
            source = BamSource(
                bam,
                sample.genome.sequence,
                decompress_threads=threads,
                cache_blocks=4,
            )
            t0 = time.perf_counter()
            result = Pipeline(source).run()
            wall = time.perf_counter() - t0
            if reference is None:
                reference = result.keys()
            assert result.keys() == reference
            if best is None or wall < best:
                best = wall
                stats = result.stats
        curve[str(threads)] = {
            "wall_s": round(best, 6),
            "prefetch_hits": int(stats.prefetch_hits),
            "prefetch_wasted": int(stats.prefetch_wasted),
        }
    serial = curve["0"]["wall_s"]
    for row in curve.values():
        row["speedup"] = round(serial / row["wall_s"], 3)
    merge_stats_report(
        "io_stats.json",
        "e2e_decompress_threads",
        curve,
        extra={"e2e_workload_columns": len(sample.genome)},
    )
    # The pooled runs actually used the pool.
    assert curve["4"]["prefetch_hits"] > 0
