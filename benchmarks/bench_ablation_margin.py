"""Ablation: the approximation margin and depth gate.

The paper fixes the margin at 0.01 above the critical value and gates
the shortcut at depth >= 100, noting both were chosen conservatively
with "no experimentation or fine-tuning" -- and floats a depth-varying
threshold as future work (the approximation tightens with depth).
This bench does that missing sweep:

  * margin in {0, 0.001, 0.01, 0.05} -- skip rate and equivalence;
  * the adaptive (depth-shrinking) margin from
    :attr:`CallerConfig.adaptive_margin`;
  * depth gate in {0, 100, 1000}.
"""

import time

import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig

from conftest import write_report

MARGINS = [0.0, 0.001, 0.01, 0.05]


def _deep_sample(table1_workload):
    _, _, samples = table1_workload
    return samples[max(samples)]


@pytest.mark.parametrize("margin", MARGINS)
def test_margin_runtime(benchmark, table1_workload, margin):
    sample = _deep_sample(table1_workload)
    cfg = CallerConfig.improved(approx_margin=margin)
    result = benchmark.pedantic(
        VariantCaller(cfg).call_sample, args=(sample,), rounds=1, iterations=1
    )
    benchmark.extra_info["margin"] = margin
    benchmark.extra_info["skip_fraction"] = round(
        result.stats.skip_fraction(), 4
    )


def test_margin_report(benchmark, table1_workload):
    sample = _deep_sample(table1_workload)

    def sweep():
        baseline = VariantCaller(CallerConfig.original()).call_sample(sample)
        rows = []
        for margin in MARGINS:
            cfg = CallerConfig.improved(approx_margin=margin)
            t0 = time.perf_counter()
            r = VariantCaller(cfg).call_sample(sample)
            rows.append((f"{margin:g}", time.perf_counter() - t0, r))
        # Adaptive margin (Discussion future-work): shrink with depth.
        cfg = CallerConfig.improved(approx_margin=0.01, adaptive_margin=1000)
        t0 = time.perf_counter()
        r = VariantCaller(cfg).call_sample(sample)
        rows.append(("adaptive", time.perf_counter() - t0, r))
        return baseline, rows

    baseline, rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ref = baseline.keys()
    lines = [
        "Margin ablation (paper: fixed 0.01, chosen conservatively)",
        f"dataset: {sample.mean_depth:.0f}x; original caller = reference",
        "",
        f"{'margin':>9} {'time (s)':>9} {'skip rate':>10} "
        f"{'calls':>6} {'== original':>12} {'subset':>7}",
    ]
    for label, seconds, r in rows:
        keys = r.keys()
        lines.append(
            f"{label:>9} {seconds:>9.3f} {r.stats.skip_fraction():>9.1%} "
            f"{len(keys):>6} {str(keys == ref):>12} {str(keys <= ref):>7}"
        )
        # The safety property must hold at EVERY margin.
        assert keys <= ref
    lines.append("")
    lines.append(
        "note: larger margins skip less (more conservative); even "
        "margin 0 can only lose calls, never invent them."
    )
    write_report("ablation_margin.txt", "\n".join(lines))


def test_depth_gate_report(benchmark, table1_workload):
    """The approx_min_depth=100 gate: sweep it."""
    _, _, samples = table1_workload
    shallow = samples[min(samples)]  # 50x: below the paper's gate

    def sweep():
        rows = []
        for gate in (0, 100, 1000):
            cfg = CallerConfig.improved(approx_min_depth=gate)
            t0 = time.perf_counter()
            r = VariantCaller(cfg).call_sample(shallow)
            rows.append((gate, time.perf_counter() - t0, r))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = VariantCaller(CallerConfig.original()).call_sample(shallow)
    lines = [
        "Depth-gate ablation at 50x (paper gates the shortcut at depth >= 100)",
        "",
        f"{'gate':>6} {'time (s)':>9} {'approx evals':>13} {'calls':>6} "
        f"{'== original':>12}",
    ]
    for gate, seconds, r in rows:
        lines.append(
            f"{gate:>6} {seconds:>9.3f} {r.stats.approx_invocations:>13} "
            f"{len(r.keys()):>6} {str(r.keys() == baseline.keys()):>12}"
        )
        assert r.keys() <= baseline.keys()
    gate_100 = rows[1][2]
    assert gate_100.stats.approx_invocations == 0, (
        "at 50x with gate 100 the approximation must never fire"
    )
    write_report("ablation_depth_gate.txt", "\n".join(lines))
