"""Ablation: Poisson-binomial tail algorithms head to head.

The paper picks the Poisson approximation over "more recent algorithms
[that] may improve [on the O(d^2) DP] but remain complex" (refs [11],
[12]).  This bench makes the comparison concrete across depths: the
pruned DP (LoFreq's existing early stop), the full DP, Hong's DFT-CF,
the Biscarri refined normal approximation, and the paper's Poisson
first pass -- timing each and reporting its error against the exact
value at the borderline K where the decision actually happens.

It also covers the Discussion's long-read note ("the approximation is
more accurate when the error probabilities are higher"): the error
table is produced for both a Q30-like and a Q12-like quality mix.
"""

import time

import numpy as np
import pytest

from repro.stats.approximation import le_cam_bound, poisson_tail_approx
from repro.stats.dftcf import poibin_sf_dftcf
from repro.stats.normal_approx import poibin_sf_refined_normal
from repro.stats.poisson_binomial import poibin_sf_dp

from conftest import write_report

DEPTHS = [200, 1000, 5000, 20000]


def _probs(d, q_mean, seed=0):
    rng = np.random.default_rng(seed)
    quals = rng.normal(q_mean, 3.0, size=d).clip(2, 41)
    return 10.0 ** (-quals / 10.0) / 3.0


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.parametrize(
    "algo", ["dp_pruned", "dp_full", "dftcf", "rna", "poisson"]
)
def test_poibin_algo_runtime(benchmark, depth, algo):
    """Time one algorithm at one depth, at the noise-regime K."""
    p = _probs(depth, 30.0)
    lam = p.sum()
    k = int(lam) + 3  # borderline: just right of the mean
    fns = {
        "dp_pruned": lambda: poibin_sf_dp(k, p, prune_above=1e-6),
        "dp_full": lambda: poibin_sf_dp(k, p),
        "dftcf": lambda: poibin_sf_dftcf(k, p),
        "rna": lambda: poibin_sf_refined_normal(k, p),
        "poisson": lambda: poisson_tail_approx(k, p),
    }
    if algo == "dftcf" and depth > 5000:
        pytest.skip("DFT-CF O(d^2) CF product too slow beyond 5k here")
    benchmark.pedantic(fns[algo], rounds=3, iterations=1)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["algo"] = algo


def test_poibin_accuracy_report(benchmark):
    def build():
        sections = []
        for label, q_mean in (("Q30 (short-read)", 30.0),
                              ("Q12 (long-read-like)", 12.0)):
            rows = []
            for d in DEPTHS:
                p = _probs(d, q_mean)
                lam = p.sum()
                k = int(lam) + 3
                t0 = time.perf_counter()
                exact = poibin_sf_dp(k, p).pvalue
                t_dp = time.perf_counter() - t0
                t0 = time.perf_counter()
                pois = poisson_tail_approx(k, p)
                t_pois = time.perf_counter() - t0
                rna = poibin_sf_refined_normal(k, p)
                rows.append(
                    (d, k, exact, pois, rna, le_cam_bound(p), t_dp, t_pois)
                )
            sections.append((label, rows))
        return sections

    sections = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = ["Poisson-binomial algorithm comparison at borderline K", ""]
    rel_errs = {}
    for label, rows in sections:
        lines.append(f"--- {label} ---")
        lines.append(
            f"{'d':>7} {'K':>5} {'exact':>10} {'Poisson':>10} {'RNA':>10} "
            f"{'|err| Pois':>11} {'LeCam bnd':>10} {'t_DP (s)':>9} {'t_Pois':>9}"
        )
        errs = []
        for d, k, exact, pois, rna, bound, t_dp, t_pois in rows:
            err = abs(pois - exact)
            errs.append(err / max(exact, 1e-300))
            lines.append(
                f"{d:>7} {k:>5} {exact:>10.4g} {pois:>10.4g} {rna:>10.4g} "
                f"{err:>11.2e} {bound:>10.2e} {t_dp:>9.4f} {t_pois:>9.5f}"
            )
            assert err <= bound + 1e-12
        rel_errs[label] = errs
        lines.append("")
    # Discussion aside under test: "the approximation is more accurate
    # when the error probabilities p_i are higher".  We measure the
    # opposite at borderline K: both the Hodges--Le Cam bound (sum
    # p_i^2) and the realised relative error GROW with p_i.  The
    # finding is reported rather than asserted either way; see
    # EXPERIMENTS.md for the discussion of this non-reproduction.
    q30 = rel_errs["Q30 (short-read)"]
    q12 = rel_errs["Q12 (long-read-like)"]
    better = sum(1 for a, b in zip(q12, q30) if a < b)
    lines.append(
        f"depths where the high-error (Q12) regime is MORE accurate than "
        f"Q30: {better}/{len(q30)}"
    )
    lines.append(
        "-> the Discussion's 'more accurate at higher error rates' aside "
        "does not reproduce under this metric; the Le Cam bound sum p_i^2 "
        "grows with p_i, and measured errors follow it."
    )
    write_report("poibin_algos.txt", "\n".join(lines))
