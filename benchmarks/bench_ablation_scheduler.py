"""Ablation: scheduling policy and chunk granularity on the hotspot
workload (the Discussion's load-imbalance remedy).

The paper observed imbalance even with dynamic scheduling when
"partitions with high concentrations of variants near the end" arrive
late, and suggested smaller end-of-run partitions (guided).  The
report sweeps (schedule, chunk size) and tabulates wall time, the
busy-time imbalance ratio, and barrier time.
"""

import time

import pytest

from repro.parallel.openmp import ParallelCallOptions, parallel_call
from repro.parallel.trace import Tracer, imbalance_metrics

from conftest import write_report

N_WORKERS = 8
GRID = [
    ("static", 512),
    ("static", 64),
    ("dynamic", 512),
    ("dynamic", 64),
    ("guided", 64),
]


def _run(sample, schedule, chunk):
    tracer = Tracer()
    t0 = time.perf_counter()
    result = parallel_call(
        sample,
        sample.genome.sequence,
        options=ParallelCallOptions(
            n_workers=N_WORKERS, schedule=schedule, chunk_columns=chunk,
            backend="thread",
        ),
        tracer=tracer,
    )
    return time.perf_counter() - t0, result, tracer


def test_scheduler_report(benchmark, hotspot_sample):
    def sweep():
        return [
            (schedule, chunk, *_run(hotspot_sample, schedule, chunk))
            for schedule, chunk in GRID
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    reference = rows[0][3].keys()
    lines = [
        "Scheduler ablation on the variant-hotspot workload "
        f"({N_WORKERS} workers)",
        "",
        f"{'schedule':>9} {'chunk':>6} {'wall (s)':>9} {'imbalance':>10} "
        f"{'barrier (ms)':>13}",
    ]
    for schedule, chunk, wall, result, tracer in rows:
        m = imbalance_metrics(tracer.events)
        lines.append(
            f"{schedule:>9} {chunk:>6} {wall:>9.3f} {m['imbalance']:>10.3f} "
            f"{m['barrier_total'] * 1e3:>13.1f}"
        )
        # Output must be schedule-invariant.
        assert result.keys() == reference
    lines.append("")
    lines.append(
        "output identical under every policy; differences are purely "
        "wall-clock/imbalance (the paper's OpenMP correctness story)."
    )
    write_report("ablation_scheduler.txt", "\n".join(lines))


@pytest.mark.parametrize("schedule,chunk", GRID)
def test_scheduler_walltime(benchmark, hotspot_sample, schedule, chunk):
    benchmark.pedantic(
        _run, args=(hotspot_sample, schedule, chunk), rounds=1, iterations=1
    )
    benchmark.extra_info["schedule"] = schedule
    benchmark.extra_info["chunk"] = chunk
