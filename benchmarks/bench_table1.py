"""Table I: original vs improved runtime across the five depths.

Paper (Xeon Gold 6138, real 1 MB - 25 GB BAMs):

    depth      orig     new    speed-up
    1,000x     52 s     51 s     1.0x
    30,000x    58 m     26 m     2.6x
    100,000x   14 h      4 h     3.3x
    300,000x   55 h     12 h     4.6x
    1,000,000x 415 h   111 h     3.7x

Here depths are scaled ~50x down (50x ... 20,000x on a 300 nt genome)
and the substrate is the in-memory vectorised pileup, so the measured
seconds differ wildly from the paper's hours -- but the three facts
Table I documents must reproduce:

  1. identical variant call sets between versions at every depth;
  2. speed-up ~1x at the shallowest depth (the approximation is gated
     off below depth 100, and shallow DP arrays are cache-resident);
  3. speed-up growing with depth.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only``
"""

import time

import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig

from conftest import FAST, write_report, write_stats_report


def _call(sample, config):
    return VariantCaller(config).call_sample(sample)


def _depth_params(table1_workload):
    _, _, samples = table1_workload
    return sorted(samples)


#: The Table I versions plus the batched engine (same algorithm as
#: "improved", chunk-level vectorised screening).
VERSION_CONFIGS = {
    "original": lambda: CallerConfig.original(),
    "improved": lambda: CallerConfig.improved(),
    "improved-batched": lambda: CallerConfig.improved(engine="batched"),
}


@pytest.mark.parametrize("depth", [50, 500, 2000, 8000, 20000])
@pytest.mark.parametrize("version", sorted(VERSION_CONFIGS))
def test_table1_runtime(benchmark, table1_workload, depth, version):
    """One cell of Table I: one version at one depth."""
    _, _, samples = table1_workload
    if depth not in samples:
        pytest.skip("depth not in this scale profile")
    sample = samples[depth]
    config = VERSION_CONFIGS[version]()
    result = benchmark.pedantic(
        _call, args=(sample, config), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["version"] = version
    benchmark.extra_info["n_calls"] = len(result.passed)
    benchmark.extra_info["dp_steps"] = result.stats.dp_steps


def test_table1_report(benchmark, table1_workload):
    """The whole table in one run: times both versions at every depth,
    checks call-set identity, writes the Table-I-shaped report."""
    _, panel, samples = table1_workload

    def build_table():
        rows = []
        for depth in sorted(samples):
            sample = samples[depth]
            t0 = time.perf_counter()
            orig = _call(sample, CallerConfig.original())
            t_orig = time.perf_counter() - t0
            t0 = time.perf_counter()
            new = _call(sample, CallerConfig.improved())
            t_new = time.perf_counter() - t0
            t0 = time.perf_counter()
            bat = _call(sample, CallerConfig.improved(engine="batched"))
            t_bat = time.perf_counter() - t0
            rows.append((depth, t_orig, t_new, t_bat, orig, new, bat))
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)

    lines = [
        "Table I reproduction (scaled ~50x: depths 50x-20,000x, 300 nt genome)",
        "paper: 1.0x / 2.6x / 3.3x / 4.6x / 3.7x at 1k/30k/100k/300k/1M depth",
        "",
        f"{'depth':>8} {'orig (s)':>10} {'new (s)':>10} {'batched (s)':>11} "
        f"{'speedup':>8} {'orig calls':>10} {'new calls':>10} {'identical':>9}",
    ]
    shallowest_speedup = None
    speedups = []
    for depth, t_orig, t_new, t_bat, orig, new, bat in rows:
        identical = (
            orig.keys() == new.keys()
            and new.keys() == bat.keys()
            and new.stats.decisions == bat.stats.decisions
        )
        speedup = t_orig / t_new if t_new > 0 else float("inf")
        speedups.append(speedup)
        if shallowest_speedup is None:
            shallowest_speedup = speedup
        lines.append(
            f"{depth:>8} {t_orig:>10.3f} {t_new:>10.3f} {t_bat:>11.3f} "
            f"{speedup:>7.2f}x "
            f"{len(orig.passed):>10} {len(new.passed):>10} {str(identical):>9}"
        )
        # Paper's headline: identical output at every depth -- now
        # across three implementations.
        assert identical, f"call sets diverged at depth {depth}"
    # Speed-up must grow from ~1x to a clear win at depth.  The FAST
    # smoke profile's shallow cells finish in milliseconds, where
    # wall-clock ratios are scheduler noise -- only the output-identity
    # assertions above are meaningful there.
    if not FAST:
        assert speedups[0] < 1.6, "no-op regime should be ~1x"
        assert max(speedups[2:]) > 1.8, "deep regime should show a speed-up"
        assert speedups[-1] == max(speedups) or speedups[-2] == max(speedups)
    write_report("table1.txt", "\n".join(lines))
    write_stats_report(
        "table1_stats.json",
        {
            f"depth{depth}/{version}": res.stats
            for depth, _, _, _, orig, new, bat in rows
            for version, res in (
                ("original", orig),
                ("improved", new),
                ("improved-batched", bat),
            )
        },
        extra={
            "speedups": {
                f"depth{depth}": t_orig / t_new if t_new > 0 else None
                for depth, t_orig, t_new, _, _, _, _ in rows
            }
        },
    )
