"""Discussion: the legacy parallel double-filtering inconsistency.

The paper: "the original implementation results in the output running
through two stages of filtering when run in parallel ... filter values
are dynamically set during a LoFreq run, which causes the
aforementioned filtering bug to produce inconsistent results.  Our
approach of using OpenMP to move all of the variant calling to the
same process seems to remedy this problem."

The report runs the same artifact-laden sample through the legacy
pipeline at several partition counts (outputs differ) and through the
OpenMP-style driver at several worker counts (outputs identical to the
single-process run).
"""

import pytest

from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.parallel.legacy import legacy_parallel_call
from repro.parallel.openmp import ParallelCallOptions, parallel_call
from repro.sim.genome import random_genome
from repro.sim.haplotypes import ArtifactSpec, random_panel
from repro.sim.reads import ReadSimulator

from conftest import write_report


@pytest.fixture(scope="module")
def tricky_sample():
    """Real variants plus strand-biased artifacts whose SB scores sit
    near the dynamic cutoffs -- the borderline calls the bug flips."""
    g = random_genome(2000, seed=201)
    panel = random_panel(
        g.sequence, 10, freq_range=(0.03, 0.1), seed=1,
        exclude_positions={100, 600, 1100, 1600},
    )
    artifacts = [
        ArtifactSpec(p, "T" if g.sequence[p] != "T" else "G", rate)
        for p, rate in [(100, 0.04), (600, 0.05), (1100, 0.06), (1600, 0.045)]
    ]
    sim = ReadSimulator(g, panel, read_length=80, artifacts=artifacts)
    return g, sim.simulate(depth=500, seed=1)


def test_filterbug_report(benchmark, tricky_sample):
    genome, sample = tricky_sample

    def run_everything():
        single = VariantCaller(CallerConfig.improved()).call_sample(sample)
        legacy = {
            n: legacy_parallel_call(
                sample, genome.sequence, n_partitions=n,
                config=CallerConfig.improved(),
            )
            for n in (1, 2, 4, 8)
        }
        openmp = {
            n: parallel_call(
                sample, genome.sequence,
                options=ParallelCallOptions(n_workers=n),
            )
            for n in (1, 2, 4, 8)
        }
        return single, legacy, openmp

    single, legacy, openmp = benchmark.pedantic(
        run_everything, rounds=1, iterations=1
    )
    ref = single.keys()
    lines = [
        "Legacy double-filtering bug reproduction",
        f"single-process PASS calls: {len(ref)}",
        "",
        f"{'mode':<10} {'workers':>8} {'PASS':>6} {'== single':>10}",
    ]
    legacy_outputs = set()
    for n, r in legacy.items():
        keys = r.keys()
        legacy_outputs.add(frozenset(keys))
        lines.append(
            f"{'legacy':<10} {n:>8} {len(keys):>6} {str(keys == ref):>10}"
        )
    openmp_outputs = set()
    for n, r in openmp.items():
        keys = r.keys()
        openmp_outputs.add(frozenset(keys))
        lines.append(
            f"{'openmp':<10} {n:>8} {len(keys):>6} {str(keys == ref):>10}"
        )
    lines.append("")
    lines.append(
        f"legacy distinct outputs across partitionings : {len(legacy_outputs)}"
    )
    lines.append(
        f"openmp distinct outputs across worker counts : {len(openmp_outputs)}"
    )

    assert len(legacy_outputs) > 1, "legacy mode should be inconsistent"
    assert len(openmp_outputs) == 1, "openmp mode must be deterministic"
    assert openmp_outputs == {frozenset(ref)}
    write_report("filterbug.txt", "\n".join(lines))


@pytest.mark.parametrize("mode", ["legacy", "openmp"])
def test_filterbug_mode_runtime(benchmark, tricky_sample, mode):
    """Runtime comparison of the two parallel organisations (same
    4-way work split)."""
    genome, sample = tricky_sample
    if mode == "legacy":
        def fn():
            return legacy_parallel_call(
                sample, genome.sequence, n_partitions=4
            )
    else:
        def fn():
            return parallel_call(
                sample, genome.sequence,
                options=ParallelCallOptions(n_workers=4),
            )
    benchmark.pedantic(fn, rounds=1, iterations=1)
