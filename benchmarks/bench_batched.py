"""Streaming vs batched engine: screening-stage and end-to-end costs.

The batched engine exists because, in Python, the O(d) Poisson-tail
screen costs one interpreter round-trip per allele -- so the *cheap*
stage dominates and the paper's Figure 2 profile inverts.  Two
measurements document the repair:

* ``test_screening_stage_speedup`` -- the screening stage alone, the
  per-allele scalar loop (exactly what the streaming engine runs)
  against the vectorised batch pass, on a depth >= 1000 workload.  The
  acceptance bar is 3x; the batch pass typically lands well above it.
* ``test_engine_end_to_end`` -- whole runs under both engines at every
  Table I depth, asserting identical call sets and decision censuses
  while reporting the wall-clock ratio (smaller, since pileup and the
  exact DP are shared).

Run: ``pytest benchmarks/bench_batched.py --benchmark-only``
"""

import time

import numpy as np
import pytest

from repro.core.batched import GUARD_BAND, batch_margins, qual_prob_table
from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.model import allele_error_probabilities, candidate_alleles
from repro.pileup.vectorized import pileup_sample
from repro.stats.approximation import (
    poisson_tail_approx,
    poisson_tail_approx_batch,
)

from conftest import FAST, write_report, write_stats_report


@pytest.fixture(scope="module")
def screening_sample():
    """A depth-2500 sample over a long genome: many columns above the
    paper's approximation gate, where the scalar screen's per-column
    ``np.power`` and per-allele interpreter round-trips -- the costs
    the batched engine amortises -- dominate."""
    from repro.sim.genome import sars_cov_2_like
    from repro.sim.haplotypes import random_panel
    from repro.sim.reads import ReadSimulator

    length = 700 if FAST else 1500
    genome = sars_cov_2_like(length=length, seed=909)
    panel = random_panel(
        genome.sequence, 10, freq_range=(0.02, 0.1), seed=909
    )
    simulator = ReadSimulator(genome, panel, read_length=100)
    return simulator.simulate(2500, seed=910)


def _screening_workload(sample, config):
    """The screening stage's input: the deep columns and their
    candidate alleles (identical, engine-independent work up to this
    point -- coverage gate, base counting)."""
    workload = []
    for column in pileup_sample(sample):
        if column.depth < max(config.min_coverage, config.approx_min_depth):
            continue
        candidates = candidate_alleles(column)
        if not candidates:
            continue
        workload.append((column, candidates))
    return workload


def _screen_scalar(workload, config, corrected_alpha):
    """The streaming engine's screen, verbatim from ``decide_allele``:
    per column the error-probability vector, then one scalar Poisson
    tail per allele, each re-deriving lambda from that vector."""
    decisions = []
    for column, candidates in workload:
        probs = allele_error_probabilities(column)
        for _, alt_count in candidates:
            p_hat = poisson_tail_approx(alt_count, probs)
            corrected = min(1.0, p_hat / corrected_alpha * config.alpha)
            margin = config.margin_for_depth(column.depth)
            decisions.append(corrected >= config.alpha + margin)
    return decisions


def _screen_batched(workload, config, corrected_alpha):
    """The batched engine's screen, verbatim from its gather/screen
    stages: lambda from the quality histogram once per column (no
    float64 probability vector for screened columns), one vectorised
    tail pass over every (column, allele) pair, and the guard-band
    scalar re-decision for threshold-grazing pairs."""
    table = qual_prob_table()
    ks, lams, pairs = [], [], []
    for column, candidates in workload:
        lam = float(np.bincount(column.quals, minlength=256) @ table)
        for _, alt_count in candidates:
            ks.append(alt_count)
            lams.append(lam)
            pairs.append((column, alt_count))
    p_hat = poisson_tail_approx_batch(
        np.array(ks, dtype=np.float64), np.array(lams, dtype=np.float64)
    )
    corrected = np.minimum(1.0, p_hat / corrected_alpha * config.alpha)
    depths = np.array([column.depth for column, _ in pairs], dtype=np.float64)
    thresholds = config.alpha + batch_margins(depths, config)
    skip = corrected >= thresholds
    for i in np.nonzero(np.abs(corrected - thresholds) < GUARD_BAND)[0]:
        column, alt_count = pairs[i]
        exact = poisson_tail_approx(
            alt_count, allele_error_probabilities(column)
        )
        exact_corrected = min(1.0, exact / corrected_alpha * config.alpha)
        margin = config.margin_for_depth(column.depth)
        skip[i] = exact_corrected >= config.alpha + margin
    return list(skip)


def _best_of(fn, repeats=3):
    best, value = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_screening_stage_speedup(benchmark, screening_sample):
    """The acceptance bar: >= 3x on the screening stage at depth >= 1000."""
    sample = screening_sample
    assert sample.mean_depth >= 1000
    config = CallerConfig.improved()
    corrected_alpha = config.corrected_alpha(len(sample.genome))
    workload = _screening_workload(sample, config)
    n_pairs = sum(len(c) for _, c in workload)

    def measure():
        t_scalar, scalar = _best_of(
            lambda: _screen_scalar(workload, config, corrected_alpha)
        )
        t_batch, batch = _best_of(
            lambda: _screen_batched(workload, config, corrected_alpha)
        )
        return t_scalar, t_batch, scalar, batch

    t_scalar, t_batch, scalar, batch = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = t_scalar / t_batch if t_batch > 0 else float("inf")
    assert batch == scalar, "screen decisions diverged between engines"
    # Anchor the hand-rolled stage copies above to the shipped engine:
    # if repro.core.batched changes its screen, the skip census here
    # must move with it or this trips.
    engine_result = VariantCaller(
        CallerConfig.improved(engine="batched")
    ).call_sample(sample)
    assert engine_result.stats.exact_skipped == sum(batch)
    lines = [
        "Screening stage: scalar per-allele loop vs vectorised batch pass",
        f"workload: {sample.mean_depth:.0f}x sample, {len(workload)} columns, "
        f"{n_pairs} (column, allele) pairs",
        "",
        f"scalar screen : {t_scalar * 1e3:>8.2f} ms",
        f"batched screen: {t_batch * 1e3:>8.2f} ms",
        f"speedup       : {speedup:>8.1f}x (acceptance bar: 3x)",
        f"identical skip decisions: {batch == scalar}",
    ]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["n_pairs"] = n_pairs
    write_report("batched_screen.txt", "\n".join(lines))
    # The 3x acceptance bar is asserted on the full workload; the FAST
    # smoke profile is too small for stable wall-clock ratios on a
    # shared CI runner, so it only sanity-checks the direction.
    if FAST:
        assert speedup > 1.0, f"batched screen slower than scalar ({speedup:.2f}x)"
    else:
        assert speedup >= 3.0, (
            f"screening speedup {speedup:.2f}x below the 3x bar"
        )


def test_engine_end_to_end(benchmark, table1_workload):
    """Whole runs under both engines at every depth: identical output,
    reported wall-clock ratio."""
    _, _, samples = table1_workload

    def build_rows():
        rows = []
        for depth in sorted(samples):
            sample = samples[depth]
            t0 = time.perf_counter()
            streaming = VariantCaller(
                CallerConfig.improved()
            ).call_sample(sample)
            t_stream = time.perf_counter() - t0
            t0 = time.perf_counter()
            batched = VariantCaller(
                CallerConfig.improved(engine="batched")
            ).call_sample(sample)
            t_batch = time.perf_counter() - t0
            rows.append((depth, t_stream, t_batch, streaming, batched))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [
        "End-to-end: streaming vs batched engine (improved algorithm)",
        "",
        f"{'depth':>8} {'stream (s)':>11} {'batched (s)':>11} {'ratio':>7} "
        f"{'calls':>6} {'identical':>9}",
    ]
    for depth, t_stream, t_batch, streaming, batched in rows:
        identical = (
            streaming.keys() == batched.keys()
            and streaming.stats.decisions == batched.stats.decisions
        )
        ratio = t_stream / t_batch if t_batch > 0 else float("inf")
        lines.append(
            f"{depth:>8} {t_stream:>11.3f} {t_batch:>11.3f} {ratio:>6.2f}x "
            f"{len(streaming.passed):>6} {str(identical):>9}"
        )
        assert identical, f"engines diverged at depth {depth}"
    write_report("batched_end_to_end.txt", "\n".join(lines))
    write_stats_report(
        "batched_end_to_end_stats.json",
        {
            f"depth{depth}/{engine}": res.stats
            for depth, _, _, streaming, batched in rows
            for engine, res in (("streaming", streaming), ("batched", batched))
        },
    )
