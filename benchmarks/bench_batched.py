"""Streaming vs batched engine: screening-stage and end-to-end costs.

The batched engine exists because, in Python, the O(d) Poisson-tail
screen costs one interpreter round-trip per allele -- so the *cheap*
stage dominates and the paper's Figure 2 profile inverts.  Two
measurements document the repair:

* ``test_screening_stage_speedup`` -- the screening stage alone, the
  per-allele scalar loop (exactly what the streaming engine runs)
  against the vectorised batch pass, on a depth >= 1000 workload.  The
  acceptance bar is 3x; the batch pass typically lands well above it.
* ``test_engine_end_to_end`` -- whole runs under both engines at every
  Table I depth, asserting identical call sets and decision censuses
  while reporting the wall-clock ratio (smaller, since pileup and the
  exact DP are shared).

* ``test_columnar_pileup_screen_speedup`` -- the whole pileup->screen
  stage: the PR 2 path (per-column pileup objects re-gathered by the
  batched engine) against the columnar ``ColumnBatch`` spine
  (structure-of-arrays pileup fed natively to ``screen_batch``), on a
  screened-out-heavy workload.  The acceptance bar is 2x over the
  PR 2 baseline.

* ``test_exact_stage_speedup`` -- the exact stage alone: the PR 3
  path (each screening survivor lifted to a ``PileupColumn`` and run
  through the scalar pruned DP one at a time) against the batch-native
  stage (``exact_batch`` feeding all survivors through
  ``poibin_sf_dp_batch`` at once), on an everything-survives workload
  (``use_approximation=False``).  The acceptance bar is 1.5x, with
  byte-identical calls and censuses; emits ``batched_stats.json``.

The per-column baselines these tests measure against were *removed*
from the engine (PR 3's pileup in PR 3, PR 3's survivor lifting in
PR 4), so each baseline lives here as a verbatim copy of the retired
code.

Run: ``pytest benchmarks/bench_batched.py --benchmark-only``
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.core.batched import (
    GUARD_BAND,
    batch_margins,
    exact_batch,
    qual_prob_table,
    screen_batch,
)
from repro.core.caller import VariantCaller
from repro.core.config import CallerConfig
from repro.core.model import allele_error_probabilities, candidate_alleles
from repro.core.results import ColumnDecision, RunStats
from repro.core.workflow import exact_allele_decision
from repro.io.regions import Region
from repro.pileup.column import PileupColumn
from repro.pileup.vectorized import pileup_sample, pileup_sample_batch
from repro.stats.approximation import (
    poisson_tail_approx,
    poisson_tail_approx_batch,
)

from conftest import FAST, write_report, write_stats_report


@pytest.fixture(scope="module")
def screening_sample():
    """A depth-2500 sample over a long genome: many columns above the
    paper's approximation gate, where the scalar screen's per-column
    ``np.power`` and per-allele interpreter round-trips -- the costs
    the batched engine amortises -- dominate."""
    from repro.sim.genome import sars_cov_2_like
    from repro.sim.haplotypes import random_panel
    from repro.sim.reads import ReadSimulator

    length = 700 if FAST else 1500
    genome = sars_cov_2_like(length=length, seed=909)
    panel = random_panel(
        genome.sequence, 10, freq_range=(0.02, 0.1), seed=909
    )
    simulator = ReadSimulator(genome, panel, read_length=100)
    return simulator.simulate(2500, seed=910)


def _screening_workload(sample, config):
    """The screening stage's input: the deep columns and their
    candidate alleles (identical, engine-independent work up to this
    point -- coverage gate, base counting)."""
    workload = []
    for column in pileup_sample(sample):
        if column.depth < max(config.min_coverage, config.approx_min_depth):
            continue
        candidates = candidate_alleles(column)
        if not candidates:
            continue
        workload.append((column, candidates))
    return workload


def _screen_scalar(workload, config, corrected_alpha):
    """The streaming engine's screen, verbatim from ``decide_allele``:
    per column the error-probability vector, then one scalar Poisson
    tail per allele, each re-deriving lambda from that vector."""
    decisions = []
    for column, candidates in workload:
        probs = allele_error_probabilities(column)
        for _, alt_count in candidates:
            p_hat = poisson_tail_approx(alt_count, probs)
            corrected = min(1.0, p_hat / corrected_alpha * config.alpha)
            margin = config.margin_for_depth(column.depth)
            decisions.append(corrected >= config.alpha + margin)
    return decisions


def _screen_batched(workload, config, corrected_alpha):
    """The batched engine's screen, verbatim from its gather/screen
    stages: lambda from the quality histogram once per column (no
    float64 probability vector for screened columns), one vectorised
    tail pass over every (column, allele) pair, and the guard-band
    scalar re-decision for threshold-grazing pairs."""
    table = qual_prob_table()
    ks, lams, pairs = [], [], []
    for column, candidates in workload:
        lam = float(np.bincount(column.quals, minlength=256) @ table)
        for _, alt_count in candidates:
            ks.append(alt_count)
            lams.append(lam)
            pairs.append((column, alt_count))
    p_hat = poisson_tail_approx_batch(
        np.array(ks, dtype=np.float64), np.array(lams, dtype=np.float64)
    )
    corrected = np.minimum(1.0, p_hat / corrected_alpha * config.alpha)
    depths = np.array([column.depth for column, _ in pairs], dtype=np.float64)
    thresholds = config.alpha + batch_margins(depths, config)
    skip = corrected >= thresholds
    for i in np.nonzero(np.abs(corrected - thresholds) < GUARD_BAND)[0]:
        column, alt_count = pairs[i]
        exact = poisson_tail_approx(
            alt_count, allele_error_probabilities(column)
        )
        exact_corrected = min(1.0, exact / corrected_alpha * config.alpha)
        margin = config.margin_for_depth(column.depth)
        skip[i] = exact_corrected >= config.alpha + margin
    return list(skip)


def _best_of(fn, repeats=3):
    best, value = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_screening_stage_speedup(benchmark, screening_sample):
    """The acceptance bar: >= 3x on the screening stage at depth >= 1000."""
    sample = screening_sample
    assert sample.mean_depth >= 1000
    config = CallerConfig.improved()
    corrected_alpha = config.corrected_alpha(len(sample.genome))
    workload = _screening_workload(sample, config)
    n_pairs = sum(len(c) for _, c in workload)

    def measure():
        t_scalar, scalar = _best_of(
            lambda: _screen_scalar(workload, config, corrected_alpha)
        )
        t_batch, batch = _best_of(
            lambda: _screen_batched(workload, config, corrected_alpha)
        )
        return t_scalar, t_batch, scalar, batch

    t_scalar, t_batch, scalar, batch = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    speedup = t_scalar / t_batch if t_batch > 0 else float("inf")
    assert batch == scalar, "screen decisions diverged between engines"
    # Anchor the hand-rolled stage copies above to the shipped engine:
    # if repro.core.batched changes its screen, the skip census here
    # must move with it or this trips.
    engine_result = VariantCaller(
        CallerConfig.improved(engine="batched")
    ).call_sample(sample)
    assert engine_result.stats.exact_skipped == sum(batch)
    lines = [
        "Screening stage: scalar per-allele loop vs vectorised batch pass",
        f"workload: {sample.mean_depth:.0f}x sample, {len(workload)} columns, "
        f"{n_pairs} (column, allele) pairs",
        "",
        f"scalar screen : {t_scalar * 1e3:>8.2f} ms",
        f"batched screen: {t_batch * 1e3:>8.2f} ms",
        f"speedup       : {speedup:>8.1f}x (acceptance bar: 3x)",
        f"identical skip decisions: {batch == scalar}",
    ]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["n_pairs"] = n_pairs
    write_report("batched_screen.txt", "\n".join(lines))
    # The 3x acceptance bar is asserted on the full workload; the FAST
    # smoke profile is too small for stable wall-clock ratios on a
    # shared CI runner, so it only sanity-checks the direction.
    if FAST:
        assert speedup > 1.0, f"batched screen slower than scalar ({speedup:.2f}x)"
    else:
        assert speedup >= 3.0, (
            f"screening speedup {speedup:.2f}x below the 3x bar"
        )


# -- retired per-column engine internals, kept verbatim as baselines ----------


class _LiftedColumn:
    """The retired engine's ``_ColumnJob``: one column's shared
    screening state, error vector materialised lazily."""

    __slots__ = ("column", "_probs")

    def __init__(self, column, probs=None):
        self.column = column
        self._probs = probs

    @property
    def probs(self):
        if self._probs is None:
            self._probs = qual_prob_table()[self.column.quals]
        return self._probs


class _LiftedPair:
    """The retired engine's ``_Pair``: one gathered (column, allele)."""

    __slots__ = ("job", "alt_code", "alt_count", "lam")

    def __init__(self, job, alt_code, alt_count, lam):
        self.job = job
        self.alt_code = alt_code
        self.alt_count = alt_count
        self.lam = lam

    @property
    def column(self):
        return self.job.column

    @property
    def probs(self):
        return self.job.probs


def _lifted_gather(columns, config, stats):
    """The retired per-column gather pass (``_gather``), base-quality
    model only (what ``CallerConfig.improved()`` runs)."""
    screened, direct = [], []
    table = qual_prob_table()
    for column in columns:
        stats.columns_seen += 1
        if column.depth < config.min_coverage:
            stats.record_decision(ColumnDecision.LOW_COVERAGE)
            continue
        candidates = candidate_alleles(column)
        if not candidates:
            stats.record_decision(ColumnDecision.NO_CANDIDATE)
            continue
        screen = (
            config.use_approximation
            and column.depth >= config.approx_min_depth
        )
        job = _LiftedColumn(column)
        lam = (
            float(np.bincount(column.quals, minlength=256) @ table)
            if screen
            else None
        )
        for alt_code, alt_count in candidates:
            stats.tests_run += 1
            pair = _LiftedPair(job, alt_code, alt_count, lam)
            if screen:
                stats.approx_invocations += 1
                screened.append(pair)
            else:
                direct.append(pair)
    return screened, direct


def _lifted_screen(pairs, corrected_alpha, config, stats):
    """The retired vectorised first pass over lifted pairs
    (``_screen``), guard band included."""
    ks = np.array([p.alt_count for p in pairs], dtype=np.float64)
    lams = np.array([p.lam for p in pairs], dtype=np.float64)
    depths = np.array([p.column.depth for p in pairs], dtype=np.float64)
    p_hat = poisson_tail_approx_batch(ks, lams)
    p_hat_corrected = np.minimum(1.0, p_hat / corrected_alpha * config.alpha)
    thresholds = config.alpha + batch_margins(depths, config)
    skip = p_hat_corrected >= thresholds
    near = np.abs(p_hat_corrected - thresholds) < GUARD_BAND
    for i in np.nonzero(near)[0]:
        pair = pairs[i]
        exact_p_hat = poisson_tail_approx(pair.alt_count, pair.probs)
        corrected = min(1.0, exact_p_hat / corrected_alpha * config.alpha)
        margin = config.margin_for_depth(pair.column.depth)
        skip[i] = corrected >= config.alpha + margin
    return skip


def _pr2_pileup_columns(sample):
    """The PR 2 pileup path, verbatim: flatten the read matrix, mask,
    stable-sort by position, find column boundaries with ``np.unique``
    (a second sort) and slice one ``PileupColumn`` object per
    position.  This is the baseline the columnar spine replaces."""
    from repro.pileup.engine import PileupConfig

    cfg = PileupConfig()
    region = Region(sample.genome.name, 0, len(sample.genome))
    reference = sample.genome.sequence
    starts, codes, quals, reverse = (
        sample.starts,
        sample.codes,
        sample.quals,
        sample.reverse,
    )
    rl = codes.shape[1]
    positions = (starts[:, None] + np.arange(rl)[None, :]).ravel()
    flat_codes = codes.ravel()
    flat_quals = quals.ravel()
    flat_rev = np.repeat(reverse, rl)
    mask = (
        (positions >= region.start)
        & (positions < region.end)
        & (flat_quals >= cfg.min_baseq)
    )
    positions = positions[mask]
    flat_codes = flat_codes[mask]
    flat_quals = flat_quals[mask]
    flat_rev = flat_rev[mask]
    order = np.argsort(positions, kind="stable")
    positions = positions[order]
    flat_codes = flat_codes[order]
    flat_quals = flat_quals[order]
    flat_rev = flat_rev[order]
    unique_pos, first_idx = np.unique(positions, return_index=True)
    boundaries = np.append(first_idx, positions.size)
    mapq_u8 = np.uint8(min(sample.mapq, 255))
    for i, pos in enumerate(unique_pos):
        lo, hi = int(boundaries[i]), int(boundaries[i + 1])
        yield PileupColumn(
            chrom=region.chrom,
            pos=int(pos),
            ref_base=reference[int(pos)].upper(),
            base_codes=flat_codes[lo:hi],
            quals=flat_quals[lo:hi],
            reverse=flat_rev[lo:hi],
            mapqs=np.full(hi - lo, mapq_u8, dtype=np.uint8),
        )


def test_columnar_pileup_screen_speedup(benchmark, screening_sample):
    """The columnar acceptance bar: pileup->screen >= 2x over PR 2.

    Baseline: PR 2's per-column pileup objects pushed through the
    retired per-column gather and screen (``_lifted_gather`` /
    ``_lifted_screen`` above, verbatim copies of the code this PR
    removed from the engine).  Columnar: ``pileup_sample_batch`` ->
    ``screen_batch``, no per-column objects.  Both must reach
    identical skip decisions and identical surviving
    (position, allele) pairs.
    """
    sample = screening_sample
    config = CallerConfig.improved()
    corrected_alpha = config.corrected_alpha(len(sample.genome))

    def baseline():
        stats = RunStats()
        screened, direct = _lifted_gather(
            _pr2_pileup_columns(sample), config, stats
        )
        skipped = 0
        survivors = [
            (p.column.pos, p.alt_code, p.alt_count) for p in direct
        ]
        if screened:
            skip = _lifted_screen(screened, corrected_alpha, config, stats)
            skipped = int(skip.sum())
            survivors.extend(
                (p.column.pos, p.alt_code, p.alt_count)
                for p, s in zip(screened, skip)
                if not s
            )
        return stats, skipped, survivors

    def columnar():
        stats = RunStats()
        batch = pileup_sample_batch(sample)
        triples = screen_batch(batch, corrected_alpha, config, stats)
        survivors = [
            (int(batch.positions[i]), code, count)
            for i, code, count in triples
        ]
        return stats, stats.exact_skipped, survivors

    def measure():
        baseline()  # warm both paths (allocator, caches, LUTs)
        columnar()
        t_base, base = _best_of(baseline)
        t_col, col = _best_of(columnar)
        return t_base, t_col, base, col

    t_base, t_col, base, col = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    base_stats, base_skipped, base_survivors = base
    col_stats, col_skipped, col_survivors = col
    assert base_skipped == col_skipped, "skip censuses diverged"
    assert sorted(base_survivors) == sorted(col_survivors)
    assert base_stats.columns_seen == col_stats.columns_seen
    assert base_stats.tests_run == col_stats.tests_run
    # Anchor to the shipped engine: the columnar pipeline must reach
    # the same skip census end to end.
    engine_result = VariantCaller(
        CallerConfig.improved(engine="batched")
    ).call_sample(sample)
    assert engine_result.stats.exact_skipped == col_skipped
    speedup = t_base / t_col if t_col > 0 else float("inf")
    lines = [
        "Pileup->screen stage: PR 2 per-column path vs columnar spine",
        f"workload: {sample.mean_depth:.0f}x sample, "
        f"{base_stats.columns_seen} columns, "
        f"{base_stats.tests_run} (column, allele) pairs, "
        f"{col_skipped} screened out",
        "",
        f"PR 2 per-column : {t_base * 1e3:>8.2f} ms",
        f"columnar batch  : {t_col * 1e3:>8.2f} ms",
        f"speedup         : {speedup:>8.1f}x (acceptance bar: 2x)",
    ]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    write_report("batched_columnar.txt", "\n".join(lines))
    write_stats_report(
        "batched_columnar_stats.json",
        {"pr2_per_column": base_stats, "columnar": col_stats},
        extra={
            "t_pr2_s": round(t_base, 6),
            "t_columnar_s": round(t_col, 6),
            "speedup": round(speedup, 3),
        },
    )
    # As with the screening bar above, wall-clock ratios on the tiny
    # FAST profile are too noisy for a hard multiple on shared CI.
    if FAST:
        assert speedup > 1.0, (
            f"columnar pileup->screen slower than PR 2 ({speedup:.2f}x)"
        )
    else:
        assert speedup >= 2.0, (
            f"columnar speedup {speedup:.2f}x below the 2x bar"
        )


@pytest.fixture(scope="module")
def exact_stage_sample():
    """A wide moderate-depth sample (the realistic calling regime:
    many columns at a few hundred x): plenty of surviving
    (column, allele) lanes per DP sweep step, which is what the batch
    exact stage amortises its per-step cost over."""
    from repro.sim.genome import sars_cov_2_like
    from repro.sim.haplotypes import random_panel
    from repro.sim.reads import ReadSimulator

    length = 1500 if FAST else 4000
    genome = sars_cov_2_like(length=length, seed=911)
    panel = random_panel(
        genome.sequence, 25, freq_range=(0.02, 0.1), seed=911
    )
    simulator = ReadSimulator(genome, panel, read_length=100)
    return simulator.simulate(600, seed=912)


def test_exact_stage_speedup(benchmark, exact_stage_sample):
    """The batch-native exact stage acceptance bar: >= 1.5x over the
    retired per-column survivor lifting.

    Workload: ``use_approximation=False``, so *every* candidate pair
    survives the (vacuous) screen and hits the exact DP -- the
    exact-stage-heavy regime.  Baseline: PR 3's survivor loop,
    verbatim -- lift each surviving column to a ``PileupColumn``,
    gather its probability vector and run the scalar pruned DP per
    pair.  Batch: ``exact_batch`` feeding all survivors through
    ``poibin_sf_dp_batch``.  Calls and censuses must be identical.
    """
    sample = exact_stage_sample
    config = CallerConfig.original()
    corrected_alpha = config.corrected_alpha(len(sample.genome))
    batch = pileup_sample_batch(sample)
    pre = RunStats()
    survivors = screen_batch(batch, corrected_alpha, config, pre)
    assert len(survivors) == pre.tests_run  # nothing screened out
    assert len(survivors) > (40 if FAST else 100)

    def lifted():
        # PR 3's evaluate_batch survivor tail, verbatim.
        stats = RunStats()
        calls = []
        table = qual_prob_table()
        jobs = {}
        for col_idx, alt_code, alt_count in survivors:
            cached = jobs.get(col_idx)
            if cached is None:
                column = batch.column(col_idx)
                jobs[col_idx] = cached = (column, table[column.quals])
            column, probs = cached
            outcome = exact_allele_decision(
                column, alt_code, alt_count, probs, corrected_alpha,
                config, stats,
            )
            if outcome.call is not None:
                calls.append(outcome.call)
        return stats, calls

    def batched():
        stats = RunStats()
        calls = exact_batch(batch, survivors, corrected_alpha, config, stats)
        return stats, calls

    def measure():
        lifted()  # warm both paths (allocator, caches, LUTs)
        batched()
        t_lift, lift = _best_of(lifted)
        t_batch, bat = _best_of(batched)
        return t_lift, t_batch, lift, bat

    t_lift, t_batch, lift, bat = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    lift_stats, lift_calls = lift
    batch_stats, batch_calls = bat
    key = lambda c: (c.chrom, c.pos, c.alt)  # noqa: E731
    assert [dataclasses.astuple(c) for c in sorted(lift_calls, key=key)] == [
        dataclasses.astuple(c) for c in sorted(batch_calls, key=key)
    ], "exact-stage calls diverged"
    assert lift_stats.decisions == batch_stats.decisions
    assert lift_stats.dp_invocations == batch_stats.dp_invocations
    assert lift_stats.dp_steps == batch_stats.dp_steps
    # Anchor to the shipped engine: a full batched run must reach the
    # same decision census as screen + batch exact stage here.
    engine_result = VariantCaller(
        CallerConfig.original(engine="batched")
    ).call_sample(sample)
    merged = dict(pre.decisions)
    for k, v in batch_stats.decisions.items():
        merged[k] = merged.get(k, 0) + v
    assert engine_result.stats.decisions == merged
    speedup = t_lift / t_batch if t_batch > 0 else float("inf")
    lines = [
        "Exact stage: per-column survivor lifting vs batch-native DP",
        f"workload: {sample.mean_depth:.0f}x sample, "
        f"{len(survivors)} surviving (column, allele) pairs, "
        f"{len(batch_calls)} calls",
        "",
        f"per-column lifting: {t_lift * 1e3:>8.2f} ms",
        f"batch exact stage : {t_batch * 1e3:>8.2f} ms",
        f"speedup           : {speedup:>8.1f}x (acceptance bar: 1.5x)",
    ]
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["n_survivors"] = len(survivors)
    write_report("batched_exact_stage.txt", "\n".join(lines))
    write_stats_report(
        "batched_stats.json",
        {"lifted": lift_stats, "batched": batch_stats},
        extra={
            "t_lifted_s": round(t_lift, 6),
            "t_batched_s": round(t_batch, 6),
            "speedup": round(speedup, 3),
            "n_survivors": len(survivors),
        },
    )
    # Wall-clock multiples are unstable on the tiny FAST profile
    # (shared CI runners); there the check is direction only.
    if FAST:
        assert speedup > 1.0, (
            f"batch exact stage slower than lifting ({speedup:.2f}x)"
        )
    else:
        assert speedup >= 1.5, (
            f"exact-stage speedup {speedup:.2f}x below the 1.5x bar"
        )


def test_engine_end_to_end(benchmark, table1_workload):
    """Whole runs under both engines at every depth: identical output,
    reported wall-clock ratio."""
    _, _, samples = table1_workload

    def build_rows():
        rows = []
        for depth in sorted(samples):
            sample = samples[depth]
            t0 = time.perf_counter()
            streaming = VariantCaller(
                CallerConfig.improved()
            ).call_sample(sample)
            t_stream = time.perf_counter() - t0
            t0 = time.perf_counter()
            batched = VariantCaller(
                CallerConfig.improved(engine="batched")
            ).call_sample(sample)
            t_batch = time.perf_counter() - t0
            rows.append((depth, t_stream, t_batch, streaming, batched))
        return rows

    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    lines = [
        "End-to-end: streaming vs batched engine (improved algorithm)",
        "",
        f"{'depth':>8} {'stream (s)':>11} {'batched (s)':>11} {'ratio':>7} "
        f"{'calls':>6} {'identical':>9}",
    ]
    for depth, t_stream, t_batch, streaming, batched in rows:
        identical = (
            streaming.keys() == batched.keys()
            and streaming.stats.decisions == batched.stats.decisions
        )
        ratio = t_stream / t_batch if t_batch > 0 else float("inf")
        lines.append(
            f"{depth:>8} {t_stream:>11.3f} {t_batch:>11.3f} {ratio:>6.2f}x "
            f"{len(streaming.passed):>6} {str(identical):>9}"
        )
        assert identical, f"engines diverged at depth {depth}"
    write_report("batched_end_to_end.txt", "\n".join(lines))
    write_stats_report(
        "batched_end_to_end_stats.json",
        {
            f"depth{depth}/{engine}": res.stats
            for depth, _, _, streaming, batched in rows
            for engine, res in (("streaming", streaming), ("batched", batched))
        },
    )
