"""Discussion cache claims: DP sweeps vs the approximation's pass.

Paper (hardware counters on the real C code): cache miss rate over 70%
for the original vs below 15% for the improved version, attributed to
the exact computation "repeatedly iterating over an array that does
not fit in the cache" at depth > 1e5.

Our idealized trace replay cannot reproduce the absolute rates (the
C original's allocator churn and pointer indirection add conflict
misses a clean streaming model lacks), but it reproduces the
*mechanism* and direction:

  * per-column **misses** for the DP explode once the O(d) probability
    vector outgrows the cache, while the approximation stays at one
    streaming pass;
  * the DP's miss *rate* jumps from ~0 (cache-resident, the regime the
    paper keeps the original path for, d < 100) to the streaming floor
    once capacity is exceeded;
  * with several threads sharing one cache, the capacity cliff moves
    to proportionally smaller d (the paper's "spill over our shared
    cache when running in parallel" point).
"""

import pytest

from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.traces import (
    approx_column_trace,
    dp_column_trace,
    interleave_traces,
    replay,
)

from conftest import write_report

#: 256 KiB shared slice, 64 B lines, 16-way -- scaled-down Xeon-ish
#: geometry (the pure-Python replay cannot afford 1 MiB x 1e5-depth
#: traces; capacity ratios, which drive the effect, are preserved).
CACHE_KW = dict(size_bytes=1 << 18, line_size=64, associativity=16)

DEPTHS = [1_000, 4_000, 16_000, 64_000]


def _stride(d):
    """Subsample the DP outer loop to ~24 sampled sweeps: every
    emitted sweep still walks the whole live prefix, so reuse
    distances (and thus miss rates) are preserved."""
    return max(1, d // 24)


def _dp_stats(d, threads=1):
    cache = SetAssociativeCache(**CACHE_KW)
    stride = _stride(d)
    if threads == 1:
        return replay(dp_column_trace(d, stride_reads=stride), cache)
    traces = [
        dp_column_trace(d, thread=t, stride_reads=stride)
        for t in range(threads)
    ]
    return replay(interleave_traces(traces), cache)


def _approx_stats(d):
    cache = SetAssociativeCache(**CACHE_KW)
    return replay(approx_column_trace(d), cache)


@pytest.mark.parametrize("depth", DEPTHS)
def test_cache_dp_replay(benchmark, depth):
    stats = benchmark.pedantic(_dp_stats, args=(depth,), rounds=1, iterations=1)
    benchmark.extra_info["depth"] = depth
    benchmark.extra_info["miss_rate"] = round(stats.miss_rate, 4)


def test_cache_report(benchmark):
    def build():
        rows = []
        for d in DEPTHS:
            dp = _dp_stats(d)
            dp8 = _dp_stats(d, threads=8)
            ap = _approx_stats(d)
            rows.append((d, dp, dp8, ap))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = [
        "Cache behaviour reproduction (Discussion): 256 KiB / 64 B / 16-way LRU",
        "paper: miss rate >70% (original) vs <15% (improved) at ultra-depth",
        "",
        f"{'depth':>8} {'DP miss%':>9} {'DP(8thr) miss%':>15} "
        f"{'approx miss%':>13} {'DP misses/col':>14} {'approx misses/col':>18}",
    ]
    for d, dp, dp8, ap in rows:
        lines.append(
            f"{d:>8} {dp.miss_rate:>8.1%} {dp8.miss_rate:>14.1%} "
            f"{ap.miss_rate:>12.1%} {dp.misses * _stride(d):>14} {ap.misses:>18}"
        )
    # Direction checks.
    shallow_dp = rows[0][1]
    deep_dp = rows[-1][1]
    deep_ap = rows[-1][3]
    assert shallow_dp.miss_rate < 0.01, "cache-resident regime"
    # Streaming floor for read+write sweeps of 8 B elements in 64 B
    # lines is 1/16 = 6.25%: every line fetched anew each sweep.
    assert deep_dp.miss_rate > 0.04, "capacity-exceeded streaming regime"
    # The improved path's total misses per column are orders of
    # magnitude lower at depth (it touches the data once).
    assert deep_dp.misses * _stride(64_000) > 100 * deep_ap.misses
    lines.append("")
    lines.append(
        "mechanism reproduced: DP sweeps lose all reuse once 8*d bytes "
        "exceed the cache; the approximation reads the column once."
    )
    write_report("cache.txt", "\n".join(lines))


def test_cache_shared_capacity_cliff(benchmark):
    """Eight threads sharing the cache move the DP's cliff to ~d/8
    (the paper's parallel-spill observation)."""

    def cliff():
        d = 12_000  # 96 KB per-thread probvec; 8 threads -> 768 KiB >> 256 KiB
        single = _dp_stats(d)
        shared = _dp_stats(d, threads=8)
        return single, shared

    single, shared = benchmark.pedantic(cliff, rounds=1, iterations=1)
    assert single.miss_rate < 0.01  # fits alone
    assert shared.miss_rate > 0.04  # spills when shared
