"""Shared benchmark fixtures and the report-file helper.

Every benchmark writes a human-readable report into
``benchmarks/out/`` as a side effect, so the paper-shape numbers
survive the pytest-benchmark run (whose own table only shows
timings).  EXPERIMENTS.md records a reference run.

Set ``REPRO_BENCH_FAST=1`` to shrink workloads ~4x for smoke runs.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

OUT_DIR = pathlib.Path(__file__).parent / "out"


def write_report(name: str, text: str) -> None:
    """Persist a benchmark report (and echo it for -s runs)."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text)
    print(f"\n[report written to {path}]\n{text}")


def write_stats_report(name: str, stats_by_key, extra: dict | None = None) -> None:
    """Persist run statistics machine-readably (``RunStats.to_dict``).

    Args:
        name: report filename (conventionally ``*.json``).
        stats_by_key: mapping of label -> :class:`repro.core.RunStats`
            (or an already-serialised dict).
        extra: additional top-level keys (workload shape, timings).
    """
    OUT_DIR.mkdir(exist_ok=True)
    payload = {
        "stats": {
            str(key): s.to_dict() if hasattr(s, "to_dict") else s
            for key, s in stats_by_key.items()
        }
    }
    if extra:
        payload.update(extra)
    path = OUT_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[stats written to {path}]")


def merge_stats_report(name: str, key: str, stats, extra: dict | None = None) -> None:
    """Merge one section into an existing stats report.

    Unlike :func:`write_stats_report` this does not clobber entries
    other benchmark files already wrote to the same report -- e.g.
    ``bench_scaling`` folds its end-to-end decompress-pool curve into
    ``io_stats.json`` after ``bench_io`` has written it.
    """
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / name
    payload: dict = {"stats": {}}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError:
            payload = {"stats": {}}
    payload.setdefault("stats", {})[str(key)] = (
        stats.to_dict() if hasattr(stats, "to_dict") else stats
    )
    if extra:
        payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[stats merged into {path}]")


@pytest.fixture(scope="session")
def table1_workload():
    """The Table I workload: one genome, five depths, one panel.

    Depths are the paper's five divided by 50 (capped for runtime);
    the panel is fixed so both caller versions chase identical truth.
    """
    from repro.sim.genome import sars_cov_2_like
    from repro.sim.haplotypes import random_panel
    from repro.sim.reads import ReadSimulator

    genome_length = 150 if FAST else 300
    depths = [50, 500, 2000, 8000] if FAST else [50, 500, 2000, 8000, 20000]
    genome = sars_cov_2_like(length=genome_length, seed=404)
    panel = random_panel(
        genome.sequence, 4, freq_range=(0.02, 0.08), seed=404,
    )
    simulator = ReadSimulator(genome, panel, read_length=100)
    samples = {
        depth: simulator.simulate(depth, seed=1000 + depth) for depth in depths
    }
    return genome, panel, samples


@pytest.fixture(scope="session")
def figure3_suite():
    """The five-dataset suite for Figure 3 (and the upset analysis)."""
    from repro.sim.datasets import paper_dataset_suite

    return paper_dataset_suite(
        genome_length=600 if FAST else 1200,
        depth_scale=400.0 if FAST else 200.0,
        panel_scale=20.0 if FAST else 10.0,
        seed=2021,
    )


@pytest.fixture(scope="session")
def hotspot_sample():
    """A sample whose variants cluster in the last 10% of the genome:
    the load-imbalance workload behind the Figure 2 reproduction."""
    import numpy as np

    from repro.sim.genome import sars_cov_2_like
    from repro.sim.haplotypes import VariantPanel, VariantSpec
    from repro.sim.reads import ReadSimulator

    length = 1000 if FAST else 2000
    genome = sars_cov_2_like(length=length, seed=77)
    rng = np.random.default_rng(78)
    panel = VariantPanel()
    hot_lo = int(length * 0.88)
    positions = rng.choice(
        np.arange(hot_lo, length - 100), size=12, replace=False
    )
    for pos in sorted(int(p) for p in positions):
        ref = genome.sequence[pos]
        alt = "ACGT"[("ACGT".index(ref) + 1) % 4]
        panel.add(VariantSpec(pos, ref, alt, float(rng.uniform(0.02, 0.1))))
    simulator = ReadSimulator(genome, panel, read_length=100)
    return simulator.simulate(depth=300 if FAST else 800, seed=79)
